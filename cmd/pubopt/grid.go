package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// gridCmd dispatches the `pubopt grid` subcommands: 2-D grid scenarios
// (a column axis × a row axis) solved on the work-stealing row runner and
// rendered as ASCII heatmaps or long-form CSV.
func gridCmd(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pubopt grid: missing subcommand")
		gridUsage(os.Stderr)
		return errUsage
	}
	switch args[0] {
	case "list":
		for _, name := range publicoption.GridScenarioNames() {
			s, _ := publicoption.ScenarioByName(name)
			fmt.Printf("%-26s %s\n", s.Name, s.Title)
		}
		return nil
	case "run":
		return gridRunCmd(args[1:])
	case "help", "-h", "--help":
		gridUsage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "pubopt grid: unknown subcommand %q\n", args[0])
		gridUsage(os.Stderr)
		return errUsage
	}
}

func gridUsage(w io.Writer) {
	fmt.Fprint(w, `pubopt grid — 2-D grid sweeps over declarative scenarios

subcommands:
  list                      list the built-in grid scenarios
  run --name <name> [flags] run a built-in grid scenario
  run --json <file> [flags] run a grid scenario from a JSON file ("-" = stdin;
                            any scenario whose sweep declares a "grid" row axis)

flags for run:
  -format heatmap|csv       output format to stdout (default heatmap)
  -layer NAME               render only this layer's heatmap (default: all);
                            layers are "phi" or metric/provider, e.g.
                            "share/public-option"
  -out DIR                  also write the grid as long-form CSV under DIR
  -seed N                   override the population's ensemble seed
  -cps N                    override the population's ensemble size
  -workers N                parallel rows, work-stealing (0 = GOMAXPROCS)
`)
}

func gridRunCmd(args []string) error {
	fs := flag.NewFlagSet("grid run", flag.ContinueOnError)
	name := fs.String("name", "", "built-in grid scenario name")
	jsonPath := fs.String("json", "", "path to a grid scenario JSON file (- for stdin)")
	format := fs.String("format", "heatmap", "output format: heatmap or csv")
	layer := fs.String("layer", "", "heatmap layer to render (default: all)")
	outDir := fs.String("out", "", "directory for long-form CSV output")
	seed := fs.Uint64("seed", 0, "ensemble seed override (0 = scenario value)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "parallel rows (0 = GOMAXPROCS)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if (*name == "") == (*jsonPath == "") {
		return fmt.Errorf("grid run: give exactly one of --name or --json")
	}
	switch *format {
	case "heatmap", "csv":
	default:
		return fmt.Errorf("unknown format %q (heatmap or csv)", *format)
	}

	var (
		s   *publicoption.Scenario
		err error
	)
	if *name != "" {
		var ok bool
		s, ok = publicoption.ScenarioByName(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt grid list')", *name)
		}
	} else if *jsonPath == "-" {
		s, err = publicoption.LoadScenario(os.Stdin)
	} else {
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		s, err = publicoption.LoadScenario(f)
		f.Close()
	}
	if err != nil {
		return err
	}
	if !s.IsGrid() {
		return fmt.Errorf("scenario %q declares a 1-D sweep; run it with 'pubopt scenario run', or add a sweep.grid row axis", s.Name)
	}
	if err := s.ApplyEnsembleOverrides(*seed, *cps); err != nil {
		return err
	}

	start := time.Now()
	grid, err := s.RunGrid(publicoption.ScenarioRunOptions{Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("== %s: %s (%d cells = %d×%d, %.1fs)\n",
		s.Name, s.Title, grid.Cells(), len(grid.Xs), len(grid.Ys), time.Since(start).Seconds())
	if s.Reference != "" {
		fmt.Printf("   reference: %s\n", s.Reference)
	}
	fmt.Println()

	switch *format {
	case "heatmap":
		if *layer != "" {
			fmt.Println(publicoption.RenderHeatmap(grid, *layer))
		} else {
			for _, l := range grid.Layers {
				fmt.Println(publicoption.RenderHeatmap(grid, l.Name))
			}
		}
	case "csv":
		if err := grid.WriteCSV(os.Stdout); err != nil {
			return err
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s_grid.csv", s.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := grid.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("   wrote %s\n", path)
	}
	return nil
}
