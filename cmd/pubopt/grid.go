package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// gridCmd dispatches the `pubopt grid` subcommands: 2-D grid scenarios
// (a column axis × a row axis) solved on the work-stealing row runner and
// rendered as ASCII heatmaps or long-form CSV.
func gridCmd(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pubopt grid: missing subcommand")
		gridUsage(os.Stderr)
		return errUsage
	}
	switch args[0] {
	case "list":
		for _, name := range publicoption.GridScenarioNames() {
			s, _ := publicoption.ScenarioByName(name)
			fmt.Printf("%-26s %s\n", s.Name, s.Title)
		}
		return nil
	case "run":
		return gridRunCmd(args[1:])
	case "help", "-h", "--help":
		gridUsage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "pubopt grid: unknown subcommand %q\n", args[0])
		gridUsage(os.Stderr)
		return errUsage
	}
}

func gridUsage(w io.Writer) {
	fmt.Fprint(w, `pubopt grid — 2-D grid sweeps over declarative scenarios

subcommands:
  list                      list the built-in grid scenarios
  run --name <name> [flags] run a built-in grid scenario
  run --json <file> [flags] run a grid scenario from a JSON file ("-" = stdin;
                            any scenario whose sweep declares a "grid" row axis)

flags for run:
  -format heatmap|csv       output format to stdout (default heatmap)
  -layer NAME               render only this layer's heatmap (default: all);
                            layers are "phi" or metric/provider, e.g.
                            "share/public-option"
  -out DIR                  also write the grid as long-form CSV under DIR
  -seed N                   override the population's ensemble seed
  -cps N                    override the population's ensemble size
  -workers N                parallel rows, work-stealing (0 = GOMAXPROCS)
  -refine                   adaptive refinement: treat the declared grid as
                            a seed, split only cells where the surface
                            bends, and interpolate the rest (sub-linear in
                            output resolution; see docs/REFINEMENT.md)
  -tol F, -depth N,         refinement overrides (0 = the scenario's
  -probes N                 sweep.grid.refine block, or package defaults)
  -res CxR                  flatten the refined surface at C×R instead of
                            the full fine-lattice resolution
`)
}

func gridRunCmd(args []string) error {
	fs := flag.NewFlagSet("grid run", flag.ContinueOnError)
	name := fs.String("name", "", "built-in grid scenario name")
	jsonPath := fs.String("json", "", "path to a grid scenario JSON file (- for stdin)")
	format := fs.String("format", "heatmap", "output format: heatmap or csv")
	layer := fs.String("layer", "", "heatmap layer to render (default: all)")
	outDir := fs.String("out", "", "directory for long-form CSV output")
	seed := fs.Uint64("seed", 0, "ensemble seed override (0 = scenario value)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "parallel rows (0 = GOMAXPROCS)")
	refineFlag := fs.Bool("refine", false, "adaptive refinement instead of dense solving")
	tol := fs.Float64("tol", 0, "refinement tolerance override (0 = scenario value or default)")
	depth := fs.Int("depth", 0, "refinement depth cap override (0 = scenario value or default)")
	probes := fs.Int("probes", 0, "verification probe budget override (0 = scenario value or default, -1 disables)")
	res := fs.String("res", "", "flatten resolution COLSxROWS for refined output (default: the fine lattice)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	//pubopt:allow(floatcmp): 0 is the exact "flag not set" sentinel (flag default)
	if !*refineFlag && (*tol != 0 || *depth != 0 || *probes != 0 || *res != "") {
		return fmt.Errorf("grid run: -tol, -depth, -probes and -res require -refine")
	}
	if (*name == "") == (*jsonPath == "") {
		return fmt.Errorf("grid run: give exactly one of --name or --json")
	}
	switch *format {
	case "heatmap", "csv":
	default:
		return fmt.Errorf("unknown format %q (heatmap or csv)", *format)
	}

	var (
		s   *publicoption.Scenario
		err error
	)
	if *name != "" {
		var ok bool
		s, ok = publicoption.ScenarioByName(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt grid list')", *name)
		}
	} else if *jsonPath == "-" {
		s, err = publicoption.LoadScenario(os.Stdin)
	} else {
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		s, err = publicoption.LoadScenario(f)
		f.Close()
	}
	if err != nil {
		return err
	}
	if !s.IsGrid() {
		return fmt.Errorf("scenario %q declares a 1-D sweep; run it with 'pubopt scenario run', or add a sweep.grid row axis", s.Name)
	}
	if err := s.ApplyEnsembleOverrides(*seed, *cps); err != nil {
		return err
	}

	start := time.Now()
	var grid *publicoption.ResultGrid
	if *refineFlag {
		grid, err = runRefinedGrid(s, *workers, *tol, *depth, *probes, *res, start)
	} else {
		grid, err = s.RunGrid(publicoption.ScenarioRunOptions{Workers: *workers})
		if err == nil {
			fmt.Printf("== %s: %s (%d cells = %d×%d, %.1fs)\n",
				s.Name, s.Title, grid.Cells(), len(grid.Xs), len(grid.Ys), time.Since(start).Seconds())
		}
	}
	if err != nil {
		return err
	}
	if s.Reference != "" {
		fmt.Printf("   reference: %s\n", s.Reference)
	}
	fmt.Println()

	switch *format {
	case "heatmap":
		if *layer != "" {
			fmt.Println(publicoption.RenderHeatmap(grid, *layer))
		} else {
			for _, l := range grid.Layers {
				fmt.Println(publicoption.RenderHeatmap(grid, l.Name))
			}
		}
	case "csv":
		if err := grid.WriteCSV(os.Stdout); err != nil {
			return err
		}
	}
	if *outDir != "" {
		if err := os.MkdirAll(*outDir, 0o755); err != nil {
			return err
		}
		path := filepath.Join(*outDir, fmt.Sprintf("%s_grid.csv", s.Name))
		f, err := os.Create(path)
		if err != nil {
			return err
		}
		if err := grid.WriteCSV(f); err != nil {
			f.Close()
			return err
		}
		if err := f.Close(); err != nil {
			return err
		}
		fmt.Printf("   wrote %s\n", path)
	}
	return nil
}

// runRefinedGrid runs the scenario through the adaptive-refinement engine
// and flattens the surrogate back to a dense grid for the normal renderers.
// CLI flags override the scenario's own refine block field-by-field.
func runRefinedGrid(s *publicoption.Scenario, workers int, tol float64, depth, probes int, res string, start time.Time) (*publicoption.ResultGrid, error) {
	if s.Sweep.Grid.Refine == nil {
		s.Sweep.Grid.Refine = &publicoption.ScenarioRefine{}
	}
	r := s.Sweep.Grid.Refine
	if tol != 0 { //pubopt:allow(floatcmp): 0 is the exact "flag not set" sentinel (flag default)
		r.Tolerance = tol
	}
	if depth != 0 {
		r.MaxDepth = depth
	}
	if probes != 0 {
		r.Probes = probes
	}
	result, err := s.RunGridRefined(publicoption.ScenarioRunOptions{Workers: workers})
	if err != nil {
		return nil, err
	}
	nx, ny := result.FineDims()
	if res != "" {
		if nx, ny, err = parseResolution(res); err != nil {
			return nil, err
		}
	}
	st := result.Stats()
	fineXs, fineYs := result.FineDims()
	fmt.Printf("== %s: %s (refined %d×%d seed to %d×%d, %.1fs)\n",
		s.Name, s.Title, len(s.Sweep.XValues()), len(s.Sweep.Grid.RowValues()),
		fineXs, fineYs, time.Since(start).Seconds())
	verdict := "unverified"
	if result.Verified() {
		verdict = "verified"
	}
	fmt.Printf("   solved %d points (+%d probes), reused %d, %d leaves; max error %.3g of tol %g (%s)\n",
		st.PointsSolved, st.ProbeSolves, st.PointsReused, st.Leaves(),
		result.MaxError(), result.Tolerance(), verdict)
	return result.Flatten(nx, ny), nil
}

// parseResolution parses a COLSxROWS flattening resolution like "80x40".
func parseResolution(res string) (nx, ny int, err error) {
	if _, err := fmt.Sscanf(res, "%dx%d", &nx, &ny); err != nil || nx < 2 || ny < 2 {
		return 0, 0, fmt.Errorf("bad -res %q: want COLSxROWS with both at least 2 (e.g. 80x40)", res)
	}
	return nx, ny, nil
}
