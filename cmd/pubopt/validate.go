package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"strings"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
	"github.com/netecon-sim/publicoption/internal/validate"
)

func validateUsage(w io.Writer) {
	fmt.Fprint(w, `pubopt validate — Tier-2 packet-level verification of solved equilibria

usage:
  pubopt validate <scenario ...> [flags]   validate named built-in scenarios
  pubopt validate -all [flags]             validate every sampleable built-in

Each sampled equilibrium is replayed through the AIMD packet simulator and
per-CP throughput (theta), delivered rate and link utilization are checked
against the fluid solver within tolerance. Exit 1 if any verdict fails.

flags:
  -all                      validate every built-in scenario that keeps
                            per-CP equilibria (batched populations skip)
  -sample N                 sweep cells sampled per scenario (default 3)
  -seed N                   base seed for cell sampling and the simulator
                            (default 1)
  -flows N                  target flow count per replayed link (default 192)
  -tol R                    relative tolerance (0 = default 0.15)
  -abs-tol A                absolute tolerance as a fraction of the link's
                            largest fluid value (0 = default 0.06)
  -cps N                    ensemble size override for random populations
                            (0 = scenario value)
  -workers N                parallel link replays (0 = GOMAXPROCS)
  -format text|csv|json     stdout format (default text)
  -out FILE                 also write the verdict report to FILE (csv, or
                            json when -format json)
`)
}

func validateCmd(args []string) error {
	fs := flag.NewFlagSet("validate", flag.ContinueOnError)
	fs.Usage = func() { validateUsage(os.Stderr) }
	all := fs.Bool("all", false, "validate every sampleable built-in scenario")
	sample := fs.Int("sample", 0, "sweep cells sampled per scenario (0 = default)")
	seed := fs.Uint64("seed", 0, "base seed for sampling and simulation (0 = default)")
	flows := fs.Int("flows", 0, "target flow count per replayed link (0 = default)")
	tol := fs.Float64("tol", 0, "relative tolerance (0 = default)")
	absTol := fs.Float64("abs-tol", 0, "absolute tolerance fraction (0 = default)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "parallel link replays (0 = GOMAXPROCS)")
	format := fs.String("format", "text", "output format: text, csv or json")
	outPath := fs.String("out", "", "also write the verdict report to FILE")
	// Scenario names may precede the flags, runCmd-style.
	var names []string
	var flagArgs []string
	for i, a := range args {
		if strings.HasPrefix(a, "-") {
			flagArgs = args[i:]
			break
		}
		names = append(names, a)
	}
	if err := parseFlags(fs, flagArgs); err != nil {
		return err
	}
	switch *format {
	case "text", "csv", "json":
	default:
		return fmt.Errorf("unknown format %q (text, csv or json)", *format)
	}
	if *all == (len(names) > 0) {
		return fmt.Errorf("validate: give scenario names or -all, not both (try 'pubopt scenario list')")
	}

	opt := validate.Options{
		Samples: *sample,
		Seed:    *seed,
		Flows:   *flows,
		RelTol:  *tol,
		AbsTol:  *absTol,
		Workers: *workers,
	}

	var scenarios []*publicoption.Scenario
	if *all {
		for _, s := range publicoption.Scenarios() {
			if s.Population.Batch > 0 {
				fmt.Printf("== %s: skipped (batched population keeps no per-CP equilibrium)\n", s.Name)
				continue
			}
			scenarios = append(scenarios, s)
		}
	} else {
		for _, name := range names {
			s, ok := publicoption.ScenarioByName(name)
			if !ok {
				return fmt.Errorf("unknown scenario %q (try 'pubopt scenario list')", name)
			}
			scenarios = append(scenarios, s)
		}
	}

	var reports []*validate.Report
	totalVerdicts, totalFailed := 0, 0
	for _, s := range scenarios {
		if *cps != 0 {
			if err := s.ApplyEnsembleOverrides(0, *cps); err != nil {
				if !*all {
					return err
				}
				// -all sweeps mixed population kinds; fixed populations
				// (archetypes, explicit) simply keep their own size.
			}
		}
		start := time.Now()
		rep, err := validate.Scenario(s, opt)
		if err != nil {
			return err
		}
		reports = append(reports, rep)
		v, f := rep.Counts()
		totalVerdicts += v
		totalFailed += f
		if *format == "text" {
			if err := validate.WriteText(os.Stdout, rep); err != nil {
				return err
			}
			fmt.Printf("   (%.1fs)\n", time.Since(start).Seconds())
		}
	}
	switch *format {
	case "csv":
		if err := validate.WriteCSV(os.Stdout, reports...); err != nil {
			return err
		}
	case "json":
		if err := validate.WriteJSON(os.Stdout, reports...); err != nil {
			return err
		}
	}
	if *outPath != "" {
		f, err := os.Create(*outPath)
		if err != nil {
			return err
		}
		if *format == "json" {
			err = validate.WriteJSON(f, reports...)
		} else {
			err = validate.WriteCSV(f, reports...)
		}
		if cerr := f.Close(); err == nil {
			err = cerr
		}
		if err != nil {
			return err
		}
		fmt.Printf("wrote %s\n", *outPath)
	}
	if totalFailed > 0 {
		return fmt.Errorf("validate: %d of %d verdicts failed", totalFailed, totalVerdicts)
	}
	if *format == "text" {
		fmt.Printf("all %d verdicts within tolerance across %d scenarios\n", totalVerdicts, len(reports))
	}
	return nil
}
