package main

import (
	"flag"
	"fmt"
	"os"
	"sort"

	publicoption "github.com/netecon-sim/publicoption"
)

// queryCmd implements `pubopt query`: evaluate one point of a 2-D grid
// scenario through the adaptive-refinement surrogate. The surrogate is
// built on the spot (one refinement run), so a single invocation costs
// about as much as a refined grid run; the long-running server's
// GET /v1/query amortizes that build across every later query.
func queryCmd(args []string) error {
	fs := flag.NewFlagSet("query", flag.ContinueOnError)
	name := fs.String("name", "", "built-in grid scenario name")
	jsonPath := fs.String("json", "", "path to a grid scenario JSON file (- for stdin)")
	x := fs.Float64("x", 0, "column-axis coordinate (resolved model units)")
	y := fs.Float64("y", 0, "row-axis coordinate (resolved model units)")
	seed := fs.Uint64("seed", 0, "ensemble seed override (0 = scenario value)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "parallel rows (0 = GOMAXPROCS)")
	fs.Usage = func() {
		fmt.Fprintln(fs.Output(), "usage: pubopt query --name <name> | --json <file>  -x X -y Y [flags]")
		fs.PrintDefaults()
	}
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if (*name == "") == (*jsonPath == "") {
		return usageErrorf("pubopt query: give exactly one of --name or --json")
	}

	var (
		s   *publicoption.Scenario
		err error
	)
	if *name != "" {
		var ok bool
		s, ok = publicoption.ScenarioByName(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt grid list')", *name)
		}
	} else if *jsonPath == "-" {
		s, err = publicoption.LoadScenario(os.Stdin)
	} else {
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		s, err = publicoption.LoadScenario(f)
		f.Close()
	}
	if err != nil {
		return err
	}
	if !s.IsGrid() {
		return fmt.Errorf("scenario %q declares a 1-D sweep; queries need a 2-D grid (a sweep.grid row axis)", s.Name)
	}
	if err := s.ApplyEnsembleOverrides(*seed, *cps); err != nil {
		return err
	}

	result, err := s.RunGridRefined(publicoption.ScenarioRunOptions{Workers: *workers})
	if err != nil {
		return err
	}
	vals, err := result.Values(*x, *y)
	if err != nil {
		x0, x1, y0, y1 := result.Bounds()
		return fmt.Errorf("%v (domain: x in [%g, %g], y in [%g, %g])", err, x0, x1, y0, y1)
	}

	layers := result.Layers()
	order := make([]int, len(layers))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool { return layers[order[a]] < layers[order[b]] })
	fmt.Printf("== %s at (%s=%g, %s=%g)\n", s.Name, s.Sweep.Axis, *x, s.Sweep.Grid.Axis, *y)
	for _, li := range order {
		fmt.Printf("   %-24s %.6g\n", layers[li], vals[li])
	}
	st := result.Stats()
	verdict := "unverified: answers interpolate without a checked bound"
	if result.Verified() {
		verdict = "verified"
	}
	fmt.Printf("   surrogate: %d solves (+%d probes), max error %.3g of tol %g (%s)\n",
		st.PointsSolved, st.ProbeSolves, result.MaxError(), result.Tolerance(), verdict)
	return nil
}
