package main

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"net"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"github.com/netecon-sim/publicoption/internal/obs"
)

// stub is a recognizable backing handler for the pprof-wrapping tests.
type stub struct{}

func (stub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot)
}

// TestWithPprofMountsProfilingEndpoints verifies the -pprof wrapper: the
// profiling index answers under /debug/pprof/ and everything else still
// reaches the service handler.
func TestWithPprofMountsProfilingEndpoints(t *testing.T) {
	h := withPprof(stub{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if body := rec.Body.String(); body == "" {
		t.Fatal("pprof index returned an empty body")
	}

	for _, path := range []string{"/healthz", "/v1/scenarios", "/"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("GET %s = %d, want to fall through to the service handler", path, rec.Code)
		}
	}
}

// TestServeRejectsBadFlags pins the serve command's usage-error contract
// for the new flag set.
func TestServeRejectsBadFlags(t *testing.T) {
	quiet(t)
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-pprof=maybe"},
		{"extra-arg"},
		{"-log-level", "loud"},
		{"-log-format", "xml"},
	} {
		if err := serveCmd(args); err == nil {
			t.Fatalf("serveCmd(%v): expected usage error", args)
		}
	}
}

// syncBuffer is a goroutine-safe log sink: serveRun's server goroutines log
// concurrently with the test's reads.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

// TestServeRunLifecycle drives the full serve path — bind, serve a request,
// cancel, drain — and checks the structured startup and shutdown log lines
// an operator reconstructs the server's lifetime from.
func TestServeRunLifecycle(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	var logBuf syncBuffer
	logger, err := obs.NewLogger(&logBuf, 0 /* info */, obs.LogJSON)
	if err != nil {
		t.Fatal(err)
	}

	ctx, cancel := context.WithCancel(context.Background())
	ready := make(chan net.Addr, 1)
	done := make(chan error, 1)
	go func() {
		done <- serveRun(ctx, serveConfig{
			workers: 1, cacheEntries: 8, trace: true, events: 16,
			logger: logger, listener: ln, ready: ready,
		})
	}()

	var addr net.Addr
	select {
	case addr = <-ready:
	case <-time.After(5 * time.Second):
		t.Fatal("server never became ready")
	}
	resp, err := http.Get(fmt.Sprintf("http://%s/healthz", addr))
	if err != nil {
		t.Fatalf("healthz against live server: %v", err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz = %d", resp.StatusCode)
	}
	if resp.Header.Get("X-Trace-Id") == "" {
		t.Fatal("live server response missing X-Trace-Id")
	}

	cancel()
	select {
	case err := <-done:
		if err != nil {
			t.Fatalf("serveRun: %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("server never shut down")
	}

	// Every line is one JSON object (obs.LogJSON); find the lifecycle msgs.
	msgs := map[string]map[string]any{}
	for _, line := range strings.Split(strings.TrimSpace(logBuf.String()), "\n") {
		var rec map[string]any
		if err := json.Unmarshal([]byte(line), &rec); err != nil {
			t.Fatalf("non-JSON log line %q: %v", line, err)
		}
		if msg, _ := rec["msg"].(string); msg != "" {
			msgs[msg] = rec
		}
	}
	listening, ok := msgs["listening"]
	if !ok {
		t.Fatalf("no \"listening\" startup line in:\n%s", logBuf.String())
	}
	if got, _ := listening["addr"].(string); got != addr.String() {
		t.Fatalf("startup line addr = %q, want %q", got, addr.String())
	}
	if _, ok := msgs["shutting down"]; !ok {
		t.Fatalf("no \"shutting down\" line in:\n%s", logBuf.String())
	}
	if rec, ok := msgs["shutdown complete"]; !ok {
		t.Fatalf("no \"shutdown complete\" line in:\n%s", logBuf.String())
	} else if _, ok := rec["uptime_s"].(float64); !ok {
		t.Fatalf("shutdown line lacks numeric uptime_s: %v", rec)
	}
}
