package main

import (
	"net/http"
	"net/http/httptest"
	"testing"
)

// stub is a recognizable backing handler for the pprof-wrapping tests.
type stub struct{}

func (stub) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	w.WriteHeader(http.StatusTeapot)
}

// TestWithPprofMountsProfilingEndpoints verifies the -pprof wrapper: the
// profiling index answers under /debug/pprof/ and everything else still
// reaches the service handler.
func TestWithPprofMountsProfilingEndpoints(t *testing.T) {
	h := withPprof(stub{})

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/debug/pprof/", nil))
	if rec.Code != http.StatusOK {
		t.Fatalf("GET /debug/pprof/ = %d, want 200", rec.Code)
	}
	if body := rec.Body.String(); body == "" {
		t.Fatal("pprof index returned an empty body")
	}

	for _, path := range []string{"/healthz", "/v1/scenarios", "/"} {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, path, nil))
		if rec.Code != http.StatusTeapot {
			t.Fatalf("GET %s = %d, want to fall through to the service handler", path, rec.Code)
		}
	}
}

// TestServeRejectsBadFlags pins the serve command's usage-error contract
// for the new flag set.
func TestServeRejectsBadFlags(t *testing.T) {
	quiet(t)
	for _, args := range [][]string{
		{"-workers", "-1"},
		{"-pprof=maybe"},
		{"extra-arg"},
	} {
		if err := serveCmd(args); err == nil {
			t.Fatalf("serveCmd(%v): expected usage error", args)
		}
	}
}
