// Command pubopt regenerates the figures of Ma & Misra, "The Public Option:
// a Non-regulatory Alternative to Network Neutrality" (CoNEXT 2011), plus
// the repository's ablation studies.
//
// Usage:
//
//	pubopt list
//	pubopt run fig4 [fig5 ...] | all   [-format chart|text|csv] [-out DIR]
//	                                   [-fast] [-seed N] [-cps N] [-workers N]
//	pubopt scenario list
//	pubopt scenario show <name>
//	pubopt scenario run --name <name> | --json <file>  [-format ...] [-out DIR]
//	                                   [-seed N] [-cps N] [-workers N]
//	pubopt grid list
//	pubopt grid run --name <name> | --json <file>  [-format heatmap|csv]
//	                                   [-layer NAME] [-out DIR]
//	                                   [-seed N] [-cps N] [-workers N]
//	                                   [-refine [-tol F] [-depth N]
//	                                   [-probes N] [-res CxR]]
//	pubopt query --name <name> | --json <file>  -x X -y Y
//	                                   [-seed N] [-cps N] [-workers N]
//	pubopt simulate list
//	pubopt simulate run --name <name> | --json <file>  [-format chart|csv|heatmap]
//	                                   [-layer NAME] [-out DIR]
//	                                   [-seed N] [-cps N] [-workers N]
//	pubopt serve [-addr HOST:PORT] [-workers N] [-cache-entries N]
//	             [-log-level LEVEL] [-log-format text|json] [-trace]
//	             [-events N] [-pprof]
//
// With -out, each table is written as CSV into DIR (one file per table);
// otherwise tables render to stdout in the chosen format.
//
// Exit codes: 0 on success (including help), 1 on runtime errors, 2 on
// usage errors (missing or unknown commands, bad flags).
package main

import (
	"errors"
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// errUsage marks usage errors: the message and usage text have already been
// printed to stderr, so main exits 2 without the generic error prefix.
var errUsage = errors.New("usage error")

// usageErrorf prints the problem to stderr and returns errUsage, so the
// caller's error propagates to a silent exit-2 in main.
func usageErrorf(format string, args ...any) error {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	return errUsage
}

// parseFlags classifies FlagSet errors: -h stays flag.ErrHelp (exit 0);
// any other parse failure — already printed by the FlagSet — becomes a
// usage error (exit 2).
func parseFlags(fs *flag.FlagSet, args []string) error {
	err := fs.Parse(args)
	if err == nil || errors.Is(err, flag.ErrHelp) {
		return err
	}
	return errUsage
}

func main() {
	switch err := run(os.Args[1:]); {
	case err == nil:
	case errors.Is(err, errUsage):
		os.Exit(2)
	case errors.Is(err, flag.ErrHelp):
		// A subcommand's -h: the FlagSet already printed its defaults.
		os.Exit(0)
	default:
		fmt.Fprintln(os.Stderr, "pubopt:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pubopt: missing command")
		usage(os.Stderr)
		return errUsage
	}
	switch args[0] {
	case "list":
		for _, e := range publicoption.Experiments() {
			fmt.Printf("%-26s %s\n", e.ID, e.Title)
		}
		return nil
	case "run":
		return runCmd(args[1:])
	case "scenario":
		return scenarioCmd(args[1:])
	case "grid":
		return gridCmd(args[1:])
	case "query":
		return queryCmd(args[1:])
	case "simulate":
		return simulateCmd(args[1:])
	case "verify":
		return verifyCmd(args[1:])
	case "validate":
		return validateCmd(args[1:])
	case "serve":
		return serveCmd(args[1:])
	case "help", "-h", "--help":
		usage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "pubopt: unknown command %q\n", args[0])
		usage(os.Stderr)
		return errUsage
	}
}

func usage(w io.Writer) {
	fmt.Fprint(w, `pubopt — reproduce the figures of "The Public Option" (CoNEXT 2011)

commands:
  list                      list available experiments
  run <id ...|all> [flags]  run experiments and render their tables
  scenario <subcmd>         declarative market scenarios: list, show,
                            run --name <name> | --json <file>
  grid <subcmd>             2-D grid sweeps (γ×ν, σ×ν, c×κ, ...): list,
                            run --name <name> | --json <file>; -refine
                            switches to adaptive refinement
  query --name <name> -x X -y Y
                            evaluate one grid point via the refinement
                            surrogate (see docs/REFINEMENT.md)
  simulate <subcmd>         discrete-time market dynamics (policies,
                            traffic, autoscaling; see docs/DYNAMICS.md):
                            list, run --name <name> | --json <file>
  serve [flags]             HTTP query service with a content-addressed
                            equilibrium cache (see docs/SERVICE.md)
  verify [seed]             run the theorem battery (Axioms 1-4, Theorems
                            1-5, Lemma 4, the headline ranking, Assumption 2)
  validate <scenario ...>   replay solved equilibria through the packet
                            simulator and check fluid/packet agreement
                            (Tier-2; see 'pubopt validate -h')

flags for run:
  -format chart|text|csv    output format to stdout (default chart)
  -out DIR                  also write each table as CSV under DIR
  -fast                     reduced grids and ensembles (for smoke tests)
  -seed N                   ensemble seed (default: the published seed)
  -cps N                    ensemble size (default 1000)
  -workers N                parallel curves (default GOMAXPROCS)

flags for serve:
  -addr HOST:PORT           listen address (default :8080)
  -workers N                max concurrent solves (default GOMAXPROCS)
  -cache-entries N          equilibrium cache LRU bound (default 2048;
                            grid cells occupy one entry each;
                            negative disables caching)
  -log-level LEVEL          debug, info, warn or error (default info;
                            debug adds per-request access lines)
  -log-format text|json     structured log output format (default text)
  -trace                    echo trace IDs in response bodies (the
                            X-Trace-Id header is always set)
  -events N                 flight recorder capacity at /debug/events
                            (default 256; negative disables)
  -pprof                    expose /debug/pprof/ (trusted networks only)
`)
}

func runCmd(args []string) error {
	fs := flag.NewFlagSet("run", flag.ContinueOnError)
	format := fs.String("format", "chart", "output format: chart, text or csv")
	outDir := fs.String("out", "", "directory for CSV output (one file per table)")
	fast := fs.Bool("fast", false, "reduced grids and ensemble")
	seed := fs.Uint64("seed", 0, "ensemble seed (0 = published seed)")
	cps := fs.Int("cps", 0, "ensemble size (0 = default)")
	workers := fs.Int("workers", 0, "parallel curves (0 = GOMAXPROCS)")
	// Flags may follow the experiment IDs; split them out first.
	var ids []string
	var flagArgs []string
	for i, a := range args {
		if strings.HasPrefix(a, "-") {
			flagArgs = args[i:]
			break
		}
		ids = append(ids, a)
	}
	if err := parseFlags(fs, flagArgs); err != nil {
		return err
	}
	if len(ids) == 0 {
		return fmt.Errorf("run: no experiment IDs given (try 'pubopt list')")
	}
	if len(ids) == 1 && ids[0] == "all" {
		ids = ids[:0]
		for _, e := range publicoption.Experiments() {
			ids = append(ids, e.ID)
		}
	}
	cfg := publicoption.ExperimentConfig{
		Fast:    *fast,
		Seed:    *seed,
		CPs:     *cps,
		Workers: *workers,
	}
	for _, id := range ids {
		e, ok := publicoption.Experiment(id)
		if !ok {
			return fmt.Errorf("unknown experiment %q", id)
		}
		start := time.Now()
		tables := e.Run(cfg)
		fmt.Printf("== %s: %s (%.1fs)\n", e.ID, e.Title, time.Since(start).Seconds())
		fmt.Printf("   paper: %s\n\n", e.Expect)
		for ti, tbl := range tables {
			switch *format {
			case "chart":
				fmt.Println(publicoption.RenderChart(tbl, 90, 22))
			case "text":
				fmt.Println(publicoption.RenderText(tbl, 40))
			case "csv":
				if err := tbl.WriteCSV(os.Stdout); err != nil {
					return err
				}
			default:
				return fmt.Errorf("unknown format %q", *format)
			}
			if *outDir != "" {
				if err := os.MkdirAll(*outDir, 0o755); err != nil {
					return err
				}
				name := filepath.Join(*outDir, fmt.Sprintf("%s_table%d.csv", id, ti+1))
				f, err := os.Create(name)
				if err != nil {
					return err
				}
				if err := tbl.WriteCSV(f); err != nil {
					f.Close()
					return err
				}
				if err := f.Close(); err != nil {
					return err
				}
				fmt.Printf("   wrote %s\n", name)
			}
		}
	}
	return nil
}
