package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"strings"
	"time"

	publicoption "github.com/netecon-sim/publicoption"
)

// scenarioCmd dispatches the `pubopt scenario` subcommands: list, show and
// run over the declarative scenario registry.
func scenarioCmd(args []string) error {
	if len(args) == 0 {
		fmt.Fprintln(os.Stderr, "pubopt scenario: missing subcommand")
		scenarioUsage(os.Stderr)
		return errUsage
	}
	switch args[0] {
	case "list":
		for _, s := range publicoption.Scenarios() {
			marker := ""
			if s.IsGrid() {
				marker = " [grid: run with 'pubopt grid run']"
			} else if s.IsDynamic() {
				marker = " [dynamics: run with 'pubopt simulate run']"
			}
			fmt.Printf("%-26s %s%s\n", s.Name, s.Title, marker)
		}
		return nil
	case "show":
		if len(args) < 2 {
			return fmt.Errorf("scenario show: missing scenario name")
		}
		s, ok := publicoption.ScenarioByName(args[1])
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt scenario list')", args[1])
		}
		js, err := s.JSON()
		if err != nil {
			return err
		}
		fmt.Println(string(js))
		return nil
	case "run":
		return scenarioRunCmd(args[1:])
	case "help", "-h", "--help":
		scenarioUsage(os.Stdout)
		return nil
	default:
		fmt.Fprintf(os.Stderr, "pubopt scenario: unknown subcommand %q\n", args[0])
		scenarioUsage(os.Stderr)
		return errUsage
	}
}

func scenarioUsage(w io.Writer) {
	fmt.Fprint(w, `pubopt scenario — declarative market experiments

subcommands:
  list                      list the built-in named scenarios
  show <name>               print a built-in scenario as JSON (edit and
                            re-run it with 'run --json')
  run --name <name> [flags] run a built-in scenario
  run --json <file> [flags] run a scenario from a JSON file ("-" = stdin)

flags for run:
  -format chart|text|csv    output format to stdout (default chart)
  -out DIR                  also write each table as CSV under DIR
  -seed N                   override the population's ensemble seed
                            (0 = the scenario's own value)
  -cps N                    override the population's ensemble size
                            (0 = the scenario's own value)
  -workers N                parallel curves/chunks/batches (0 = GOMAXPROCS)
`)
}

func scenarioRunCmd(args []string) error {
	fs := flag.NewFlagSet("scenario run", flag.ContinueOnError)
	name := fs.String("name", "", "built-in scenario name")
	jsonPath := fs.String("json", "", "path to a scenario JSON file (- for stdin)")
	format := fs.String("format", "chart", "output format: chart, text or csv")
	outDir := fs.String("out", "", "directory for CSV output (one file per table)")
	seed := fs.Uint64("seed", 0, "ensemble seed override (0 = scenario value)")
	cps := fs.Int("cps", 0, "ensemble size override (0 = scenario value)")
	workers := fs.Int("workers", 0, "parallelism (0 = GOMAXPROCS)")
	if err := parseFlags(fs, args); err != nil {
		return err
	}
	if (*name == "") == (*jsonPath == "") {
		return fmt.Errorf("scenario run: give exactly one of --name or --json")
	}
	switch *format {
	case "chart", "text", "csv":
	default:
		return fmt.Errorf("unknown format %q (chart, text or csv)", *format)
	}

	var (
		s   *publicoption.Scenario
		err error
	)
	if *name != "" {
		var ok bool
		s, ok = publicoption.ScenarioByName(*name)
		if !ok {
			return fmt.Errorf("unknown scenario %q (try 'pubopt scenario list')", *name)
		}
	} else if *jsonPath == "-" {
		s, err = publicoption.LoadScenario(os.Stdin)
	} else {
		f, ferr := os.Open(*jsonPath)
		if ferr != nil {
			return ferr
		}
		s, err = publicoption.LoadScenario(f)
		f.Close()
	}
	if err != nil {
		return err
	}
	if s.IsDynamic() {
		return fmt.Errorf("scenario %q is a dynamics simulation; run it with 'pubopt simulate run'", s.Name)
	}
	if err := s.ApplyEnsembleOverrides(*seed, *cps); err != nil {
		return err
	}

	start := time.Now()
	tables, err := s.Run(publicoption.ScenarioRunOptions{Workers: *workers})
	if err != nil {
		return err
	}
	fmt.Printf("== %s: %s (%.1fs)\n", s.Name, s.Title, time.Since(start).Seconds())
	if s.Reference != "" {
		fmt.Printf("   reference: %s\n", s.Reference)
	}
	fmt.Println()
	for ti, tbl := range tables {
		switch *format {
		case "chart":
			fmt.Println(publicoption.RenderChart(tbl, 90, 22))
		case "text":
			fmt.Println(publicoption.RenderText(tbl, 40))
		case "csv":
			if err := tbl.WriteCSV(os.Stdout); err != nil {
				return err
			}
		}
		if *outDir != "" {
			if err := os.MkdirAll(*outDir, 0o755); err != nil {
				return err
			}
			metric := tbl.YLabel
			if metric == "" {
				metric = fmt.Sprintf("table%d", ti+1)
			}
			path := filepath.Join(*outDir, fmt.Sprintf("%s_%s.csv", s.Name, strings.ReplaceAll(metric, "/", "-")))
			f, err := os.Create(path)
			if err != nil {
				return err
			}
			if err := tbl.WriteCSV(f); err != nil {
				f.Close()
				return err
			}
			if err := f.Close(); err != nil {
				return err
			}
			fmt.Printf("   wrote %s\n", path)
		}
	}
	return nil
}
