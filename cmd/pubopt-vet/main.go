// Command pubopt-vet is the repo's static-analysis multichecker: it runs
// the internal/analysis suite (hotpathalloc, floatcmp, detrand, lockhold,
// streamcheck, allowcheck) under the `go vet -vettool` protocol.
//
// Usage:
//
//	go build -o /tmp/pubopt-vet ./cmd/pubopt-vet
//	go vet -vettool=/tmp/pubopt-vet ./...
//
// or, letting the go build cache keep the binary warm:
//
//	go vet -vettool=$(go run ./cmd/pubopt-vet -print-path) ./...
//
// The tool speaks the unit-checker protocol the go command drives:
//
//	pubopt-vet -V=full        print a version fingerprint (build caching)
//	pubopt-vet -flags         print supported flags as JSON
//	pubopt-vet help           describe the analyzers
//	pubopt-vet <file>.cfg     analyze one package unit (invoked by go vet)
//
// It is implemented entirely on the standard library (go/parser, go/types,
// go/importer): the unit's dependencies are type-checked from the export
// data the go command lists in the .cfg file, so a full ./... run costs
// little more than the type checks go vet performs anyway. See
// docs/ANALYSIS.md for the rules and the suppression convention.
package main

import (
	"crypto/sha256"
	"encoding/json"
	"fmt"
	"io"
	"os"
	"strings"

	"github.com/netecon-sim/publicoption/internal/analysis"
)

func main() {
	progname := "pubopt-vet"
	args := os.Args[1:]

	// Flag handling is deliberately manual: the go command probes with
	// exactly `-V=full` and `-flags`, then invokes `<tool> [flags] x.cfg`.
	jsonOut := false
	var cfg string
	for _, arg := range args {
		switch {
		case arg == "-V=full" || arg == "--V=full":
			printVersion(progname)
			return
		case arg == "-V" || arg == "--V":
			fmt.Printf("%s version devel\n", progname)
			return
		case arg == "-flags" || arg == "--flags":
			printFlagDefs()
			return
		case arg == "-print-path" || arg == "--print-path":
			// Convenience for `go vet -vettool=$(go run ./cmd/pubopt-vet
			// -print-path)`: go run caches the build, and the binary
			// reports where it lives.
			exe, err := os.Executable()
			if err != nil {
				fatalf("%v", err)
			}
			fmt.Println(exe)
			return
		case arg == "-json" || arg == "--json":
			jsonOut = true
		case arg == "help" || arg == "-help" || arg == "--help" || arg == "-h":
			printHelp(progname)
			return
		case strings.HasSuffix(arg, ".cfg"):
			cfg = arg
		default:
			fatalf("unrecognized argument %q; this tool is driven by `go vet -vettool` (see `%s help`)", arg, progname)
		}
	}
	if cfg == "" {
		printHelp(progname)
		os.Exit(1)
	}
	os.Exit(runUnit(cfg, jsonOut))
}

// printVersion emits the fingerprint line the go command hashes into its
// build cache key: change the binary and every package re-vets; don't, and
// warm runs are free.
func printVersion(progname string) {
	exe, err := os.Executable()
	if err != nil {
		fatalf("%v", err)
	}
	f, err := os.Open(exe)
	if err != nil {
		fatalf("%v", err)
	}
	defer f.Close()
	h := sha256.New()
	if _, err := io.Copy(h, f); err != nil {
		fatalf("%v", err)
	}
	fmt.Printf("%s version devel comments-go-here buildID=%02x\n", progname, h.Sum(nil)[:16])
}

// printFlagDefs advertises the supported flags in the JSON shape the go
// command expects from a vet tool.
func printFlagDefs() {
	type jsonFlag struct {
		Name  string `json:"Name"`
		Bool  bool   `json:"Bool"`
		Usage string `json:"Usage"`
	}
	defs := []jsonFlag{
		{Name: "V", Bool: false, Usage: "print version and exit"},
		{Name: "flags", Bool: true, Usage: "print flags in JSON"},
		{Name: "json", Bool: true, Usage: "emit JSON output"},
		{Name: "print-path", Bool: true, Usage: "print the path of this executable and exit"},
	}
	out, err := json.Marshal(defs)
	if err != nil {
		fatalf("%v", err)
	}
	fmt.Println(string(out))
}

func printHelp(progname string) {
	fmt.Printf("%s: pubopt's repo-specific static-analysis suite\n\n", progname)
	fmt.Printf("Run it over the module with:\n\n\tgo vet -vettool=$(go run ./cmd/pubopt-vet -print-path) ./...\n\n")
	fmt.Printf("Registered analyzers:\n\n")
	for _, a := range analysis.Suite() {
		fmt.Printf("\t%-14s %s\n", a.Name, a.Doc)
	}
	fmt.Printf("\nSuppress a deliberate exception on its own line or the line above:\n\n")
	fmt.Printf("\t//pubopt:allow(<analyzer>): <reason>\n\nSee docs/ANALYSIS.md for each rule's rationale.\n")
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, "pubopt-vet: "+format+"\n", args...)
	os.Exit(1)
}
