package main

// The unit-checker protocol: `go vet` hands the tool one JSON config file
// per package unit, listing the unit's Go files and, crucially, the
// compiled export data of every dependency. Type-checking against export
// data makes a whole-module run cheap — no source re-typechecking of the
// dependency graph — and is exactly how the x/tools unitchecker works;
// this is a stdlib-only reimplementation of the subset pubopt-vet needs
// (our analyzers neither produce nor consume cross-package facts).

import (
	"encoding/json"
	"fmt"
	"go/ast"
	"go/build"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"strings"

	"github.com/netecon-sim/publicoption/internal/analysis"
)

// vetConfig mirrors the fields of the go command's vet.cfg that this tool
// consumes. Unknown fields are ignored.
type vetConfig struct {
	ID           string
	Compiler     string
	Dir          string
	ImportPath   string
	GoVersion    string
	GoFiles      []string
	NonGoFiles   []string
	IgnoredFiles []string

	ImportMap   map[string]string // import path -> canonical package path
	PackageFile map[string]string // canonical package path -> export data file
	Standard    map[string]bool

	VetxOnly   bool
	VetxOutput string

	SucceedOnTypecheckFailure bool
}

// runUnit analyzes one package unit and returns the process exit code:
// 0 clean, 1 on tool/typecheck errors, 2 when findings were reported.
func runUnit(cfgPath string, jsonOut bool) int {
	data, err := os.ReadFile(cfgPath)
	if err != nil {
		fatalf("reading config: %v", err)
	}
	var cfg vetConfig
	if err := json.Unmarshal(data, &cfg); err != nil {
		fatalf("parsing config %s: %v", cfgPath, err)
	}

	// The go command requires the facts file to exist even though this
	// suite records no facts; write it first so every exit path below
	// leaves a cacheable unit behind.
	if cfg.VetxOutput != "" {
		if err := os.WriteFile(cfg.VetxOutput, []byte("pubopt-vet: no facts\n"), 0o666); err != nil {
			fatalf("writing facts output: %v", err)
		}
	}
	if cfg.VetxOnly {
		// Dependency units exist only to carry facts; nothing to do.
		return 0
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, name := range cfg.GoFiles {
		f, err := parser.ParseFile(fset, name, nil, parser.ParseComments)
		if err != nil {
			if cfg.SucceedOnTypecheckFailure {
				return 0
			}
			fmt.Fprintln(os.Stderr, err)
			return 1
		}
		files = append(files, f)
	}

	pkg, info, err := typeCheck(fset, files, &cfg)
	if err != nil {
		if cfg.SucceedOnTypecheckFailure {
			return 0
		}
		fmt.Fprintf(os.Stderr, "%s: %v\n", cfg.ImportPath, err)
		return 1
	}

	diags, err := analysis.Run(&analysis.Package{
		Fset:    fset,
		Files:   files,
		Pkg:     pkg,
		PkgPath: pkg.Path(),
		Info:    info,
	}, analysis.Suite())
	if err != nil {
		fatalf("%v", err)
	}
	if len(diags) == 0 {
		if jsonOut {
			fmt.Println("{}")
		}
		return 0
	}
	printDiagnostics(fset, &cfg, diags, jsonOut)
	return 2
}

// typeCheck builds the unit's *types.Package against the export data
// listed in the config.
func typeCheck(fset *token.FileSet, files []*ast.File, cfg *vetConfig) (*types.Package, *types.Info, error) {
	compiler := cfg.Compiler
	if compiler == "" {
		compiler = "gc"
	}
	// The importer resolves through the config: source-level import path →
	// canonical package path (ImportMap) → export data file (PackageFile).
	lookup := func(path string) (io.ReadCloser, error) {
		file, ok := cfg.PackageFile[path]
		if !ok {
			return nil, fmt.Errorf("no export data for %q", path)
		}
		return os.Open(file)
	}
	compImp := importer.ForCompiler(fset, compiler, lookup)
	imp := mappedImporter{imp: compImp, importMap: cfg.ImportMap}

	info := &types.Info{
		Types:      make(map[ast.Expr]types.TypeAndValue),
		Uses:       make(map[*ast.Ident]types.Object),
		Defs:       make(map[*ast.Ident]types.Object),
		Selections: make(map[*ast.SelectorExpr]*types.Selection),
	}
	tc := &types.Config{
		Importer: imp,
		Sizes:    types.SizesFor(compiler, build.Default.GOARCH),
	}
	if cfg.GoVersion != "" {
		tc.GoVersion = cfg.GoVersion
	}
	pkg, err := tc.Check(cfg.ImportPath, fset, files, info)
	return pkg, info, err
}

// mappedImporter canonicalizes import paths through the config's
// ImportMap before delegating to the export-data importer.
type mappedImporter struct {
	imp       types.Importer
	importMap map[string]string
}

func (m mappedImporter) Import(path string) (*types.Package, error) {
	if path == "unsafe" {
		return types.Unsafe, nil
	}
	if mapped, ok := m.importMap[path]; ok {
		path = mapped
	}
	return m.imp.Import(path)
}

// jsonDiagnostic is the per-finding shape of -json output, keyed like the
// x/tools drivers: {pkg: {analyzer: [{posn, message}]}}.
type jsonDiagnostic struct {
	Posn    string `json:"posn"`
	Message string `json:"message"`
}

func printDiagnostics(fset *token.FileSet, cfg *vetConfig, diags []analysis.Diagnostic, jsonOut bool) {
	if jsonOut {
		byAnalyzer := make(map[string][]jsonDiagnostic)
		for _, d := range diags {
			byAnalyzer[d.Analyzer] = append(byAnalyzer[d.Analyzer], jsonDiagnostic{
				Posn:    fset.Position(d.Pos).String(),
				Message: d.Message,
			})
		}
		out := map[string]map[string][]jsonDiagnostic{cfg.ImportPath: byAnalyzer}
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "\t")
		if err := enc.Encode(out); err != nil {
			fatalf("encoding diagnostics: %v", err)
		}
		return
	}
	for _, d := range diags {
		pos := fset.Position(d.Pos)
		name := pos.Filename
		if cfg.Dir != "" && strings.HasPrefix(name, cfg.Dir+string(os.PathSeparator)) {
			name = name[len(cfg.Dir)+1:]
		}
		fmt.Fprintf(os.Stderr, "%s:%d:%d: [%s] %s\n", name, pos.Line, pos.Column, d.Analyzer, d.Message)
	}
}
