package publicoption

import (
	"github.com/netecon-sim/publicoption/internal/dynamics"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// Market-dynamics surface: scenarios with a "dynamics" block run through
// discrete time instead of a parameter sweep — a deterministic
// collector→optimizer→actuator tick loop in which traffic varies, provider
// policies re-price, consumers migrate with inertia, and the Public Option
// autoscales toward an M/M/1 delay target. See docs/DYNAMICS.md for the
// loop model and docs/SCENARIOS.md for the JSON schema.

type (
	// ScenarioDynamics declares a scenario's dynamics block; setting it on
	// Scenario.Dynamics turns the scenario into a tick simulation solved by
	// Simulate.
	ScenarioDynamics = scenario.DynamicsSpec
	// ScenarioTraffic declares the demand process driving a simulation
	// (constant, diurnal, step, ramp, or seeded noise).
	ScenarioTraffic = scenario.TrafficSpec
	// ScenarioPolicy declares one provider's per-tick pricing policy
	// (fixed, best_response, gradient, or sticky).
	ScenarioPolicy = scenario.PolicySpec
	// ScenarioAutoscale declares the Public Option's capacity controller.
	ScenarioAutoscale = scenario.AutoscaleSpec
	// Trajectory is a completed simulation: one TrajectoryTick per tick.
	Trajectory = dynamics.Trajectory
	// TrajectoryTick is one tick's full observable outcome — shares,
	// prices, capacities, surplus, revenue, utilization, and the Public
	// Option's M/M/1 delay.
	TrajectoryTick = dynamics.TickRecord
	// SimulateOptions controls execution, not meaning.
	SimulateOptions = dynamics.Options
)

// DynamicsScenarioNames lists the built-in dynamics scenarios, sorted.
func DynamicsScenarioNames() []string { return scenario.DynamicsNames() }

// Simulate runs a dynamics scenario's full trajectory. Render the result
// with Trajectory.Tables (time-series tables for RenderChart/WriteCSV) or
// Trajectory.Grid (a providers×ticks heatmap for RenderHeatmap).
func Simulate(s *Scenario, opt SimulateOptions) (*Trajectory, error) {
	return dynamics.Run(s, opt)
}
