// Benchmark harness: one benchmark per figure of the paper's evaluation
// (Figures 2–5 and 7–12), the headline regime comparison, the ablation
// studies from DESIGN.md, and micro-benchmarks of the core solvers.
//
// The figure benchmarks regenerate the full published configuration
// (1000-CP ensemble, full grids) per iteration; they are experiment
// harnesses first and timing probes second. Run them once each:
//
//	go test -bench=. -benchmem -benchtime=1x
//
// Each figure benchmark reports a headline scalar from the regenerated
// data (peak revenue, surplus level, crossover price …) via ReportMetric so
// regressions in the *economics*, not just the runtime, are visible in
// benchmark diffs. EXPERIMENTS.md records the paper-vs-measured comparison.
package publicoption_test

import (
	"testing"

	publicoption "github.com/netecon-sim/publicoption"
)

// runFigure executes a registered experiment once per iteration and returns
// the last run's tables for metric extraction.
func runFigure(b *testing.B, id string) []*publicoption.ResultTable {
	b.Helper()
	cfg := publicoption.ExperimentConfig{}
	var tables []*publicoption.ResultTable
	for i := 0; i < b.N; i++ {
		tables = publicoption.RunExperiment(id, cfg)
	}
	return tables
}

// seriesByName finds a series in a table (fatal if missing).
func seriesByName(b *testing.B, tbl *publicoption.ResultTable, name string) publicoption.ResultSeries {
	b.Helper()
	for _, s := range tbl.Series {
		if s.Name == name {
			return s
		}
	}
	b.Fatalf("table %q missing series %q", tbl.Title, name)
	return publicoption.ResultSeries{}
}

func argmax(ys []float64) int {
	best := 0
	for i, y := range ys {
		if y > ys[best] {
			best = i
		}
	}
	return best
}

func BenchmarkFig2DemandFamily(b *testing.B) {
	tables := runFigure(b, "fig2")
	s := seriesByName(b, tables[0], "beta=5")
	// Paper: β=5 roughly halves demand at a 10% throughput drop.
	for i := range s.X {
		if s.X[i] >= 0.9 {
			b.ReportMetric(s.Y[i], "demand@ω=0.9")
			break
		}
	}
}

func BenchmarkFig3RateEquilibrium(b *testing.B) {
	tables := runFigure(b, "fig3")
	demand := tables[1]
	// Capacity at which Skype-type demand saturates (paper: between Google
	// and Netflix).
	s := seriesByName(b, demand, "skype")
	for i := range s.X {
		if s.Y[i] >= 0.95 {
			b.ReportMetric(s.X[i], "skype-satur-ν")
			break
		}
	}
}

func BenchmarkFig4MonopolyPriceSweep(b *testing.B) {
	tables := runFigure(b, "fig4")
	psi := seriesByName(b, tables[0], "nu=200")
	peak := argmax(psi.Y)
	b.ReportMetric(psi.X[peak], "c*@ν=200")    // paper: ≈ 0.45
	b.ReportMetric(psi.Y[peak], "Ψpeak@ν=200") // revenue at the optimum
}

func BenchmarkFig5MonopolyStrategyGrid(b *testing.B) {
	tables := runFigure(b, "fig5")
	psi := seriesByName(b, tables[0], "k=0.9,c=0.5")
	phi := seriesByName(b, tables[1], "k=0.9,c=0.5")
	b.ReportMetric(psi.Y[argmax(psi.Y)], "Ψpeak@κ=0.9")
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φfinal@κ=0.9")
}

func BenchmarkFig7DuopolyPriceSweep(b *testing.B) {
	tables := runFigure(b, "fig7")
	share := seriesByName(b, tables[0], "nu=150")
	psi150 := seriesByName(b, tables[1], "nu=150")
	psi200 := seriesByName(b, tables[1], "nu=200")
	b.ReportMetric(share.Y[argmax(share.Y)], "m_I-max@ν=150") // paper: slightly > 0.5
	// Paper: peak Ψ_I at ν=200 is LOWER than at ν=150 under κ=1.
	b.ReportMetric(psi150.Y[argmax(psi150.Y)], "Ψpeak@ν=150")
	b.ReportMetric(psi200.Y[argmax(psi200.Y)], "Ψpeak@ν=200")
}

func BenchmarkFig8DuopolyStrategyGrid(b *testing.B) {
	tables := runFigure(b, "fig8")
	share := seriesByName(b, tables[2], "k=0.5,c=0.2")
	phi := seriesByName(b, tables[1], "k=0.5,c=0.2")
	b.ReportMetric(share.Y[len(share.Y)-1], "m_I@abundant") // paper: ≤ 0.5
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φ@abundant")
}

func BenchmarkFig9MonopolyPriceSweepB(b *testing.B) {
	tables := runFigure(b, "fig9")
	phi := seriesByName(b, tables[1], "nu=200")
	b.ReportMetric(phi.Y[0], "Φ@c=0,ν=200")
}

func BenchmarkFig10MonopolyStrategyGridB(b *testing.B) {
	tables := runFigure(b, "fig10")
	phi := seriesByName(b, tables[1], "k=0.5,c=0.5")
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φfinal")
}

func BenchmarkFig11DuopolyPriceSweepB(b *testing.B) {
	tables := runFigure(b, "fig11")
	share := seriesByName(b, tables[0], "nu=150")
	b.ReportMetric(share.Y[argmax(share.Y)], "m_I-max@ν=150")
}

func BenchmarkFig12DuopolyStrategyGridB(b *testing.B) {
	tables := runFigure(b, "fig12")
	phi := seriesByName(b, tables[1], "k=0.5,c=0.2")
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φ@abundant")
}

func BenchmarkRegimesComparison(b *testing.B) {
	tables := runFigure(b, "regimes")
	phi := tables[0]
	po := seriesByName(b, phi, "public-option")
	ne := seriesByName(b, phi, "neutral")
	un := seriesByName(b, phi, "unregulated")
	last := len(po.Y) - 1
	// The paper's headline ordering at abundant capacity.
	b.ReportMetric(po.Y[last], "Φ-public-option")
	b.ReportMetric(ne.Y[last], "Φ-neutral")
	b.ReportMetric(un.Y[last], "Φ-unregulated")
}

func BenchmarkAblationAlphaFair(b *testing.B) {
	tables := runFigure(b, "ablation-alphafair")
	phi := seriesByName(b, tables[0], "maxmin")
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φfinal-maxmin")
}

func BenchmarkAblationTCPvsMaxMin(b *testing.B) {
	tables := runFigure(b, "ablation-tcp")
	jain := seriesByName(b, tables[0], "jain")
	maxErr := seriesByName(b, tables[0], "max-rel-err")
	b.ReportMetric(jain.Y[len(jain.Y)-1], "jain@40flows")
	b.ReportMetric(maxErr.Y[len(maxErr.Y)-1], "relerr@40flows")
}

func BenchmarkAblationMM1Baseline(b *testing.B) {
	tables := runFigure(b, "ablation-mm1")
	mm := seriesByName(b, tables[0], "mm1")
	b.ReportMetric(mm.Y[len(mm.Y)-1], "mm1-utilization")
}

func BenchmarkAblationNashVsCompetitive(b *testing.B) {
	tables := runFigure(b, "ablation-nash")
	nash := seriesByName(b, tables[1], "nash")
	comp := seriesByName(b, tables[1], "competitive")
	var worst float64
	for i := range nash.Y {
		d := nash.Y[i] - comp.Y[i]
		if d < 0 {
			d = -d
		}
		if d > worst {
			worst = d
		}
	}
	b.ReportMetric(worst, "maxΦgap")
}

func BenchmarkAblationPublicOptionCapacity(b *testing.B) {
	tables := runFigure(b, "ablation-pubopt-capacity")
	phi := seriesByName(b, tables[0], "phi-with-po")
	b.ReportMetric(phi.Y[0], "Φ@γ=0.05")
	b.ReportMetric(phi.Y[len(phi.Y)-1], "Φ@γ=0.5")
}

// --- Micro-benchmarks of the core solvers (true performance probes). ---

func BenchmarkSolverRateEquilibrium1000(b *testing.B) {
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		publicoption.RateEquilibrium(100, pop)
	}
}

func BenchmarkSolverClassGame1000(b *testing.B) {
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	s := publicoption.NewSolver(nil)
	strat := publicoption.Strategy{Kappa: 0.5, C: 0.4}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Competitive(strat, 100, pop)
	}
}

func BenchmarkSolverDuopoly1000(b *testing.B) {
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		publicoption.DuopolyWithPublicOption(
			publicoption.Strategy{Kappa: 1, C: 0.3}, 0.5, 100, pop)
	}
}

func BenchmarkTCPSim20Flows(b *testing.B) {
	flows := make([]publicoption.TCPFlow, 20)
	for i := range flows {
		flows[i] = publicoption.TCPFlow{Name: "f", RTT: 0.05}
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := publicoption.SimulateTCP(publicoption.TCPConfig{Capacity: 100}, flows); err != nil {
			b.Fatal(err)
		}
	}
}
