package publicoption_test

import (
	"math"
	"strings"
	"testing"

	publicoption "github.com/netecon-sim/publicoption"
)

func TestFacadeQuickstartFlow(t *testing.T) {
	pop := publicoption.Archetypes()
	eq := publicoption.RateEquilibrium(2000, pop)
	if len(eq.Theta) != 3 {
		t.Fatalf("got %d throughputs", len(eq.Theta))
	}
	phi := publicoption.ConsumerSurplus(eq)
	if phi <= 0 || phi > publicoption.MaxConsumerSurplus(pop) {
		t.Fatalf("Φ = %v outside (0, max]", phi)
	}
	// Absolute-scale equivalence.
	abs := publicoption.SolveSystem(publicoption.MaxMin{}, 500, 2000*500, pop)
	for i := range eq.Theta {
		if math.Abs(abs.Theta[i]-eq.Theta[i]) > 1e-9 {
			t.Fatalf("SolveSystem disagrees with per-capita at CP %d", i)
		}
	}
}

func TestFacadeMechanisms(t *testing.T) {
	pop := publicoption.Archetypes()
	for _, a := range []publicoption.Allocator{
		publicoption.MaxMin{},
		publicoption.AlphaFair{Alpha: 2},
		publicoption.PerCPMaxMin{},
	} {
		eq := publicoption.RateEquilibriumUnder(a, 2000, pop)
		if agg := eq.Aggregate(); math.Abs(agg-2000) > 1e-3 {
			t.Errorf("%s: aggregate %v, want 2000", a.Name(), agg)
		}
	}
}

func TestFacadeEquilibriumWorkspace(t *testing.T) {
	pop := publicoption.Archetypes()
	w := publicoption.NewEquilibriumWorkspace(nil)
	for _, nu := range []float64{500, 1000, 2000} {
		got := w.Solve(nu, pop)
		want := publicoption.RateEquilibrium(nu, pop)
		if math.Abs(got.Level-want.Level) > 1e-9*math.Max(want.Level, 1) {
			t.Fatalf("ν=%g: workspace level %v, reference %v", nu, got.Level, want.Level)
		}
		for i := range want.Theta {
			if math.Abs(got.Theta[i]-want.Theta[i]) > 1e-9*math.Max(want.Theta[i], 1) {
				t.Fatalf("ν=%g: workspace θ_%d = %v, reference %v", nu, i, got.Theta[i], want.Theta[i])
			}
		}
	}
	kept := w.Solve(1000, pop).Clone()
	w.Solve(2000, pop) // rebinds the pooled result; the clone must not move
	if ref := publicoption.RateEquilibrium(1000, pop); math.Abs(kept.Aggregate()-ref.Aggregate()) > 1e-6 {
		t.Fatalf("cloned equilibrium drifted after workspace reuse")
	}
}

func TestFacadePopulations(t *testing.T) {
	if n := len(publicoption.PaperPopulation(publicoption.PhiCorrelated)); n != 1000 {
		t.Fatalf("paper population size %d", n)
	}
	pop := publicoption.GeneratePopulation(publicoption.PhiIndependent, 50, 3)
	if len(pop) != 50 {
		t.Fatalf("generated %d CPs", len(pop))
	}
	if err := pop.Validate(); err != nil {
		t.Fatal(err)
	}
	// Generation is deterministic per seed.
	again := publicoption.GeneratePopulation(publicoption.PhiIndependent, 50, 3)
	for i := range pop {
		if pop[i] != again[i] {
			t.Fatal("GeneratePopulation not deterministic")
		}
	}
}

func TestFacadeMonopolyAndWelfare(t *testing.T) {
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 80, 5)
	sat := pop.TotalUnconstrainedPerCapita()
	mono := publicoption.NewMonopoly(nil)
	eq := mono.Outcome(publicoption.Strategy{Kappa: 1, C: 0.2}, 0.3*sat, pop)
	if eq.Psi() <= 0 {
		t.Fatal("expected positive monopoly revenue")
	}
	w := publicoption.WelfareOf(eq.Premium, 0.2)
	if w.ISP <= 0 || w.Total() <= 0 {
		t.Fatalf("welfare decomposition broken: %+v", w)
	}
}

func TestFacadeDuopolyWithPublicOption(t *testing.T) {
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 80, 6)
	sat := pop.TotalUnconstrainedPerCapita()
	out := publicoption.DuopolyWithPublicOption(
		publicoption.Strategy{Kappa: 1, C: 0.3}, 0.5, 0.4*sat, pop)
	if len(out.Shares) != 2 || math.Abs(out.Shares[0]+out.Shares[1]-1) > 1e-9 {
		t.Fatalf("shares = %v", out.Shares)
	}
	if out.Phi <= 0 {
		t.Fatal("market surplus must be positive")
	}
	if out.Eq("public-option") == nil {
		t.Fatal("named ISP accessor broken")
	}
}

func TestFacadeTCP(t *testing.T) {
	flows := []publicoption.TCPFlow{
		{Name: "a", RTT: 0.05},
		{Name: "b", RTT: 0.05},
	}
	res, err := publicoption.SimulateTCP(publicoption.TCPConfig{Capacity: 10}, flows)
	if err != nil {
		t.Fatal(err)
	}
	ref := publicoption.TCPMaxMinReference(10, []float64{0, 0})
	for i := range flows {
		if math.Abs(res.Flows[i].Rate-ref[i]) > 0.2*ref[i] {
			t.Errorf("flow %d rate %v vs reference %v", i, res.Flows[i].Rate, ref[i])
		}
	}
}

func TestFacadeExperimentRegistry(t *testing.T) {
	exps := publicoption.Experiments()
	if len(exps) < 16 {
		t.Fatalf("registry has only %d experiments", len(exps))
	}
	if _, ok := publicoption.Experiment("fig4"); !ok {
		t.Fatal("fig4 missing")
	}
	tables := publicoption.RunExperiment("fig2", publicoption.ExperimentConfig{Fast: true})
	if len(tables) != 1 {
		t.Fatalf("fig2 tables = %d", len(tables))
	}
	chart := publicoption.RenderChart(tables[0], 60, 12)
	if !strings.Contains(chart, "beta=5") {
		t.Error("chart missing legend")
	}
	text := publicoption.RenderText(tables[0], 10)
	if !strings.Contains(text, "omega") {
		t.Error("text missing header")
	}
}

func TestFacadePublicOptionStrategyNeutral(t *testing.T) {
	if !publicoption.PublicOptionStrategy.Neutral() {
		t.Fatal("the Public Option strategy must be neutral")
	}
	if publicoption.PublicOptionStrategy.Kappa != 0 || publicoption.PublicOptionStrategy.C != 0 {
		t.Fatal("Definition 5: s_PO = (0, 0)")
	}
}
