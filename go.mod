module github.com/netecon-sim/publicoption

go 1.22
