package publicoption

import (
	"github.com/netecon-sim/publicoption/internal/cache"
	"github.com/netecon-sim/publicoption/internal/service"
)

// Service is the long-running HTTP query layer over the model: the scenario
// and experiment registries behind a stdlib-only JSON API with a
// content-addressed equilibrium cache (singleflight-deduplicated, LRU
// bounded, solve-pool limited). It implements http.Handler; mount it on any
// server or run it via `pubopt serve`. See docs/SERVICE.md.
type Service = service.Server

// ServiceOptions configures NewService: solve-pool size, cache bound,
// structured logging, trace-ID echoing, and the flight recorder's capacity
// (see docs/OBSERVABILITY.md).
type ServiceOptions = service.Options

// Service response shapes, exported for typed clients.
type (
	// ServiceRunResponse is what the run endpoints return.
	ServiceRunResponse = service.RunResponse
	// ServiceRunResult is the cacheable part of a run response.
	ServiceRunResult = service.RunResult
	// ServiceTable is one result table in wire form.
	ServiceTable = service.Table
	// ServiceSeries is one curve of a wire-form table.
	ServiceSeries = service.Series
	// ServiceScenarioInfo is one row of GET /v1/scenarios.
	ServiceScenarioInfo = service.ScenarioInfo
	// ServiceExperimentInfo is one row of GET /v1/experiments.
	ServiceExperimentInfo = service.ExperimentInfo
	// ServiceCacheStats snapshots the equilibrium cache's counters.
	ServiceCacheStats = cache.Stats
)

// DefaultServiceCacheEntries is the cache's default LRU bound.
const DefaultServiceCacheEntries = service.DefaultCacheEntries

// NewService builds the HTTP service with its equilibrium cache and worker
// pool.
func NewService(opts ServiceOptions) *Service { return service.New(opts) }
