package publicoption

import (
	"github.com/netecon-sim/publicoption/internal/obs"
	"github.com/netecon-sim/publicoption/internal/plot"
	"github.com/netecon-sim/publicoption/internal/refine"
	"github.com/netecon-sim/publicoption/internal/scenario"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// Grid-sweep surface: 2-D scenarios (a column axis × a row axis, e.g. the
// Public Option share γ × per-capita capacity ν) compile into cell jobs,
// solve on a work-stealing row runner with one warm-started solver per
// worker, and render as long-form CSV or ASCII heatmaps. See
// docs/SCENARIOS.md for the grid JSON schema and docs/ARCHITECTURE.md for
// where grids sit in the layer stack.

type (
	// ScenarioGrid declares the optional second (row) axis of a scenario
	// sweep; setting it on ScenarioSweep.Grid turns the 1-D sweep into a
	// 2-D grid solved by Scenario.RunGrid.
	ScenarioGrid = scenario.GridSpec
	// ResultGrid is a solved 2-D grid: resolved axis values plus one scalar
	// layer per recorded metric (per metric and provider for per-provider
	// metrics).
	ResultGrid = sweep.Grid
	// ResultGridLayer is one scalar field of a ResultGrid.
	ResultGridLayer = sweep.GridLayer
	// GridJob is a compiled grid scenario: resolved cells plus a per-worker
	// cell solver — the unit the serving layer caches cell-by-cell.
	GridJob = scenario.GridJob
	// GridCell is one solved grid cell: position, resolved coordinates, and
	// one value per layer.
	GridCell = scenario.Cell
	// GridCellSpec is the content-addressable specification of one cell,
	// hashed into per-cell equilibrium cache keys.
	GridCellSpec = scenario.CellSpec
	// ScenarioRefine is the optional sweep.grid.refine block: it switches
	// Scenario.RunGridRefined from dense solving to adaptive refinement
	// (split only where the surface bends, down to max_depth, with a
	// solver-verified error bound). See docs/REFINEMENT.md.
	ScenarioRefine = scenario.RefineSpec
	// RefinedGrid is the outcome of an adaptive refinement run: a queryable
	// interpolating surrogate (At/Values), flattenable to any resolution
	// (Flatten), carrying its refinement telemetry (Stats) and verified
	// error bound (Verified/MaxError).
	RefinedGrid = refine.Result
	// GridRefineStats is the refinement telemetry block: points solved vs
	// reused, cells split vs interpolated, and the leaf-depth histogram.
	GridRefineStats = obs.RefineStats
)

// GridScenarioNames lists the built-in 2-D grid scenarios, sorted.
func GridScenarioNames() []string { return scenario.GridNames() }

// RenderHeatmap renders one layer of a solved grid as an ASCII heatmap
// (largest row-axis value on top, 10-symbol shade ramp, range legend).
// An empty layer name selects the first layer.
func RenderHeatmap(g *ResultGrid, layer string) string { return plot.Heatmap(g, layer) }
