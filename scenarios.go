package publicoption

import (
	"fmt"
	"io"
	"strings"

	"github.com/netecon-sim/publicoption/internal/plot"
	"github.com/netecon-sim/publicoption/internal/scenario"
)

// Scenario is a declarative market experiment: providers, CP population,
// regulation regime and sweep axis as plain data, round-trippable to JSON.
// Build one literally, load it with LoadScenario, or copy a built-in from
// ScenarioByName and modify it; Scenario.Run solves it into ResultTables.
type Scenario = scenario.Scenario

// Scenario component specs, exported so scenarios can be built in code.
type (
	// ScenarioPopulation declares the CP side of a scenario.
	ScenarioPopulation = scenario.PopulationSpec
	// ScenarioProvider declares one ISP of a scenario.
	ScenarioProvider = scenario.ProviderSpec
	// ScenarioRegulation switches a scenario to a regime comparison.
	ScenarioRegulation = scenario.RegulationSpec
	// ScenarioSweep declares a scenario's x-axis, grid and metrics.
	ScenarioSweep = scenario.SweepSpec
	// ScenarioRunOptions controls execution parallelism.
	ScenarioRunOptions = scenario.RunOptions
)

// Scenarios returns deep copies of every built-in named scenario, sorted by
// name. The registry covers each figure regime of the paper plus market
// structures from the related literature (asymmetric duopoly, revenue
// rebates, batched large-N oligopoly).
func Scenarios() []*Scenario { return scenario.All() }

// ScenarioNames lists the built-in scenario names, sorted.
func ScenarioNames() []string { return scenario.Names() }

// ScenarioByName returns a deep copy of the named built-in scenario.
func ScenarioByName(name string) (*Scenario, bool) { return scenario.Get(name) }

// LoadScenario parses a scenario from JSON and validates it.
func LoadScenario(r io.Reader) (*Scenario, error) { return scenario.Load(r) }

// RunScenarioReport runs the scenario and renders a self-contained text
// report — title, description, and every result table as aligned columns
// (maxRows caps each table's rows by subsampling; 0 keeps all). It is the
// shared rendering path of the runnable examples; use Scenario.Run for
// programmatic access to the tables.
func RunScenarioReport(s *Scenario, opt ScenarioRunOptions, maxRows int) (string, error) {
	tables, err := s.Run(opt)
	if err != nil {
		return "", err
	}
	var b strings.Builder
	fmt.Fprintf(&b, "=== %s\n%s\n\n", s.Title, s.Description)
	for _, t := range tables {
		b.WriteString(plot.Text(t, maxRows))
		b.WriteString("\n")
	}
	return b.String(), nil
}
