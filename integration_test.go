package publicoption_test

import (
	"math"
	"testing"

	publicoption "github.com/netecon-sim/publicoption"
)

// End-to-end integration scenarios exercising the full substrate chain
// through the public API: TCP simulation → analytic equilibrium → surplus →
// strategic games. These are the cross-module stories a downstream user
// would build.

// Scenario: an operator models its regional market bottom-up. The TCP layer
// justifies the max-min abstraction, the abstraction feeds the rate
// equilibrium, the equilibrium feeds surplus, the surplus drives the market
// game — and the final answer (deploy a Public Option) is consistent all
// the way down.
func TestIntegrationBottomUpPipeline(t *testing.T) {
	// 1. Transport layer: AIMD flows at a 100-unit bottleneck behave
	// max-min fair.
	flows := []publicoption.TCPFlow{
		{Name: "a", RTT: 0.05}, {Name: "b", RTT: 0.05},
		{Name: "c", RTT: 0.05}, {Name: "capped", RTT: 0.05, Cap: 10},
	}
	sim, err := publicoption.SimulateTCP(publicoption.TCPConfig{Capacity: 100}, flows)
	if err != nil {
		t.Fatal(err)
	}
	ref := publicoption.TCPMaxMinReference(100, []float64{0, 0, 0, 10})
	for i := range flows {
		if d := math.Abs(sim.Flows[i].Rate-ref[i]) / ref[i]; d > 0.25 {
			t.Fatalf("transport layer deviates from max-min at flow %d by %.0f%%", i, 100*d)
		}
	}

	// 2. Model layer: the max-min equilibrium on the paper's ensemble.
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 200, 42)
	sat := pop.TotalUnconstrainedPerCapita()
	nu := 0.6 * sat
	eq := publicoption.RateEquilibrium(nu, pop)
	if u := eq.Aggregate() / nu; math.Abs(u-1) > 1e-6 {
		t.Fatalf("model layer utilization %v, want work conservation", u)
	}
	phiNeutral := publicoption.ConsumerSurplus(eq)

	// 3. Strategy layer: an unregulated monopolist would do damage here.
	mono := publicoption.NewMonopoly(nil)
	cBest, eqBest := mono.OptimalPrice(1, 1, nu, pop, 40)
	if eqBest.Phi() >= phiNeutral {
		t.Skipf("draw does not exhibit misalignment at ν=%.3g (c*=%v)", nu, cBest)
	}

	// 4. Remedy layer: with a Public Option present, the incumbent's own
	// market-share maximization (Theorem 5) lifts consumer surplus above
	// the unregulated monopoly level. (Merely *existing* is not enough —
	// against a frozen hostile strategy, migration equalizes at the
	// incumbent's surplus level; the remedy works through incentives.)
	mk := publicoption.NewMarket(nil, pop, nu)
	isps := []publicoption.ISP{
		{Name: "incumbent", Gamma: 0.5, Strategy: publicoption.Strategy{Kappa: 1, C: cBest}},
		{Name: "po", Gamma: 0.5, Strategy: publicoption.PublicOptionStrategy},
	}
	grid := publicoption.StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     []float64{0, 0.2, 0.4, 0.6, 0.8, 1},
	}
	_, out, _ := mk.BestResponse(isps, 0, grid)
	if out.Phi <= eqBest.Phi() {
		t.Fatalf("Public Option market Φ=%v did not improve on monopoly Φ=%v", out.Phi, eqBest.Phi())
	}
}

// Scenario: the welfare ledger stays consistent across the class game — no
// surplus is created or destroyed by pricing, only moved between the ISP
// and the CPs.
func TestIntegrationWelfareConservation(t *testing.T) {
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 120, 9)
	sat := pop.TotalUnconstrainedPerCapita()
	solver := publicoption.NewSolver(nil)
	for _, c := range []float64{0.1, 0.4, 0.7} {
		eq := solver.Competitive(publicoption.Strategy{Kappa: 1, C: c}, 0.3*sat, pop)
		w := publicoption.WelfareOf(eq.Premium, c)
		// ISP revenue plus CP net utility equals gross CP value at any price.
		gross := 0.0
		for i := range eq.Premium.Pop {
			gross += eq.Premium.Pop[i].V * eq.Premium.PerCapitaRate(i)
		}
		if math.Abs(w.ISP+w.CPs-gross) > 1e-9*math.Max(gross, 1) {
			t.Fatalf("c=%v: transfer identity broken: %v + %v != %v", c, w.ISP, w.CPs, gross)
		}
		if math.Abs(w.ISP-eq.Psi()) > 1e-9*math.Max(w.ISP, 1) {
			t.Fatalf("c=%v: two revenue accountings disagree", c)
		}
	}
}

// Scenario: determinism end to end — the full published pipeline reproduces
// itself exactly, which is what makes EXPERIMENTS.md checkable.
func TestIntegrationDeterminism(t *testing.T) {
	run := func() (float64, float64) {
		pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
		out := publicoption.DuopolyWithPublicOption(
			publicoption.Strategy{Kappa: 1, C: 0.3}, 0.5, 100, pop)
		return out.Shares[0], out.Phi
	}
	s1, p1 := run()
	s2, p2 := run()
	if s1 != s2 || p1 != p2 {
		t.Fatalf("pipeline not deterministic: (%v,%v) vs (%v,%v)", s1, p1, s2, p2)
	}
}
