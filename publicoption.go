// Package publicoption is a from-scratch Go reproduction of
//
//	Richard T. B. Ma and Vishal Misra,
//	"The Public Option: a Non-regulatory Alternative to Network Neutrality",
//	ACM CoNEXT 2011 (arXiv:1106.3242).
//
// It implements the paper's three-party Internet ecosystem model —
// consumers, last-mile ISPs and content providers (CPs) — along with every
// layer the analysis depends on: demand functions (Assumption 1), axiomatic
// rate-allocation mechanisms and the rate-equilibrium solver (Axioms 1–4,
// Theorem 1), consumer/ISP surplus accounting, the CP class-choice games
// under paid prioritization (Definitions 2–3), the monopoly Stackelberg
// game (§III), the duopoly against a Public Option ISP (§IV-A) and the
// oligopolistic market-share game (§IV-B). A fluid TCP/AIMD simulator
// validates the "TCP ≈ max-min fair" modelling assumption, and an
// M/M/1-delay baseline reproduces the congestion abstraction of prior
// economics literature for comparison.
//
// This root package is the stable public surface: it re-exports the model
// types and entry points from the internal packages. The cmd/pubopt tool
// regenerates every figure of the paper's evaluation; see DESIGN.md for the
// experiment inventory and EXPERIMENTS.md for paper-vs-measured results.
//
// # Quick start
//
//	pop := publicoption.Archetypes() // Google-, Netflix-, Skype-type CPs
//	eq := publicoption.RateEquilibrium(2000, pop)
//	fmt.Println(eq.Theta, publicoption.ConsumerSurplus(eq))
//
// Everything is computed per consumer ("per capita"): capacities are
// ν = µ/M, surpluses are Φ = CS/M and Ψ = IS/M. Scale invariance (Axiom 4,
// Theorem 3) makes this lossless; use SolveSystem for absolute (M, µ)
// inputs.
package publicoption

import (
	"github.com/netecon-sim/publicoption/internal/alloc"
	"github.com/netecon-sim/publicoption/internal/core"
	"github.com/netecon-sim/publicoption/internal/demand"
	"github.com/netecon-sim/publicoption/internal/econ"
	"github.com/netecon-sim/publicoption/internal/netsim"
	"github.com/netecon-sim/publicoption/internal/numeric"
	"github.com/netecon-sim/publicoption/internal/traffic"
)

// Model types re-exported from the internal packages. The aliases are the
// supported names; the internal packages are implementation detail.
type (
	// CP is one content provider: popularity α, unconstrained per-user
	// throughput θ̂, per-unit revenue v, per-unit consumer utility φ and a
	// demand curve.
	CP = traffic.CP
	// Population is an ordered set of CPs.
	Population = traffic.Population
	// PhiSetting selects how consumer utility φ is drawn in the paper's
	// random ensembles (correlated with β, or independent).
	PhiSetting = traffic.PhiSetting
	// EnsembleConfig parameterizes random CP populations.
	EnsembleConfig = traffic.EnsembleConfig

	// DemandCurve is a normalized demand function d(ω) satisfying the
	// paper's Assumption 1.
	DemandCurve = demand.Curve
	// ExponentialDemand is the paper's demand family (Eq. 3).
	ExponentialDemand = demand.Exponential

	// Allocator is a rate-allocation mechanism satisfying Axioms 1–4.
	Allocator = alloc.Allocator
	// MaxMin is per-user max-min fairness, the paper's TCP model.
	MaxMin = alloc.MaxMin
	// AlphaFair is the weighted Mo–Walrand α-fair family.
	AlphaFair = alloc.AlphaFair
	// PerCPMaxMin equalizes aggregate rates across CPs instead of users.
	PerCPMaxMin = alloc.PerCPMaxMin
	// Equilibrium is a rate equilibrium (Theorem 1).
	Equilibrium = alloc.Result
	// EquilibriumWorkspace is the reusable, allocation-free equilibrium
	// kernel: it owns its scratch buffers and warm-starts successive solves
	// from the previous level. Results it returns are pooled; Clone them to
	// retain. Create one per goroutine with NewEquilibriumWorkspace.
	EquilibriumWorkspace = alloc.Workspace

	// Strategy is an ISP differentiation strategy s = (κ, c).
	Strategy = core.Strategy
	// ISP is a competing ISP: capacity share γ and strategy.
	ISP = core.ISP
	// Solver computes CP class-choice equilibria (Definitions 2–3).
	Solver = core.Solver
	// ClassEquilibrium is a two-class CP partition with its rate equilibria.
	ClassEquilibrium = core.ClassEquilibrium
	// Monopoly analyzes the §III Stackelberg game.
	Monopoly = core.Monopoly
	// Market solves consumer-migration equilibria (§IV, Assumption 5).
	Market = core.Market
	// MarketOutcome is a multi-ISP migration equilibrium.
	MarketOutcome = core.MarketOutcome
	// StrategyGrid enumerates candidate strategies for best-response search.
	StrategyGrid = core.StrategyGrid

	// Welfare decomposes per-capita surplus by party.
	Welfare = econ.Welfare

	// TCPFlow is one AIMD flow in the fluid bottleneck simulator.
	TCPFlow = netsim.Flow
	// TCPConfig parameterizes a simulator run.
	TCPConfig = netsim.Config
	// TCPResult is the simulator's measured outcome.
	TCPResult = netsim.Result
)

// Ensemble φ settings (§III-E and appendix).
const (
	// PhiCorrelated is the main-text setting: φ_i ~ U[0, β_i], biasing
	// utility toward throughput-sensitive CPs.
	PhiCorrelated = traffic.PhiCorrelated
	// PhiIndependent is the appendix setting: φ_i drawn independently of
	// β_i on the same scale (Figures 9–12).
	PhiIndependent = traffic.PhiIndependent
)

// PublicOptionStrategy is the fixed strategy (κ=0, c=0) of a Public Option
// ISP (Definition 5).
var PublicOptionStrategy = core.PublicOption

// Archetypes returns the paper's §II-D example population: Google-,
// Netflix- and Skype-type CPs (Figure 3 workload, throughputs in Kbps).
func Archetypes() Population { return traffic.Archetypes() }

// PaperPopulation returns the deterministic 1000-CP ensemble of §III-E used
// by all published experiments, under the given φ setting.
func PaperPopulation(phi PhiSetting) Population { return traffic.PaperPopulation(phi) }

// PaperEnsemble returns the §III-E ensemble configuration (draw with
// EnsembleConfig.Generate and a seeded RNG for custom populations).
func PaperEnsemble(phi PhiSetting) EnsembleConfig { return traffic.PaperEnsemble(phi) }

// GeneratePopulation draws a random population of n CPs from the §III-E
// ensemble with the given seed — a smaller stand-in for PaperPopulation
// when full-scale runs are unnecessary.
func GeneratePopulation(phi PhiSetting, n int, seed uint64) Population {
	cfg := traffic.PaperEnsemble(phi)
	cfg.N = n
	return cfg.Generate(numeric.NewRNG(seed))
}

// RateEquilibrium solves the unique rate equilibrium (Theorem 1) of the
// per-capita system (ν, pop) under max-min fairness, the paper's default
// mechanism. Use RateEquilibriumUnder for other mechanisms.
func RateEquilibrium(nu float64, pop Population) *Equilibrium {
	return alloc.Solve(alloc.MaxMin{}, nu, pop)
}

// RateEquilibriumUnder solves the rate equilibrium under an explicit
// allocation mechanism.
func RateEquilibriumUnder(a Allocator, nu float64, pop Population) *Equilibrium {
	return alloc.Solve(a, nu, pop)
}

// NewEquilibriumWorkspace returns a reusable warm-started equilibrium
// solver for mechanism a (nil means max-min). Sweeping callers that solve
// many nearby systems should prefer it over RateEquilibrium: successive
// solves reuse all scratch memory (zero heap allocations on the steady
// state) and warm-start from the previous operating level.
func NewEquilibriumWorkspace(a Allocator) *EquilibriumWorkspace {
	return alloc.NewWorkspace(a)
}

// SolveSystem is the absolute-scale entry point for a system of M consumers
// sharing capacity mu (Axiom 4 reduces it to ν = µ/M).
func SolveSystem(a Allocator, m, mu float64, pop Population) *Equilibrium {
	return alloc.SolveSystem(a, m, mu, pop)
}

// ConsumerSurplus returns the per-capita consumer surplus Φ (Eq. 2) of a
// rate equilibrium.
func ConsumerSurplus(eq *Equilibrium) float64 { return econ.Phi(eq) }

// MaxConsumerSurplus returns Φ's saturation value Σ φ_i·α_i·θ̂_i.
func MaxConsumerSurplus(pop Population) float64 { return econ.MaxPhi(pop) }

// WelfareOf decomposes a class equilibrium's per-capita surplus at premium
// price c among consumers, the ISP and the CPs.
func WelfareOf(eq *Equilibrium, c float64) Welfare { return econ.WelfareOf(eq, c) }

// NewSolver returns a class-choice game solver over mechanism a (nil for
// max-min).
func NewSolver(a Allocator) *Solver { return core.NewSolver(a) }

// NewMonopoly returns a monopoly analyzer (§III) over solver s (nil for
// defaults).
func NewMonopoly(s *Solver) *Monopoly { return core.NewMonopoly(s) }

// NewMarket returns a consumer-migration market solver (§IV) for the
// population and system per-capita capacity.
func NewMarket(s *Solver, pop Population, nuBar float64) *Market {
	return core.NewMarket(s, pop, nuBar)
}

// DuopolyWithPublicOption solves the §IV-A game: a strategic ISP with
// capacity share gamma playing strategy s against a Public Option holding
// the rest, on system per-capita capacity nuBar.
func DuopolyWithPublicOption(s Strategy, gamma, nuBar float64, pop Population) *MarketOutcome {
	mk := core.NewMarket(nil, pop, nuBar)
	return mk.SolveDuopoly(
		ISP{Name: "strategic", Gamma: gamma, Strategy: s},
		ISP{Name: "public-option", Gamma: 1 - gamma, Strategy: core.PublicOption},
	)
}

// SimulateTCP runs the fluid AIMD bottleneck simulator.
func SimulateTCP(cfg TCPConfig, flows []TCPFlow) (*TCPResult, error) {
	return netsim.Run(cfg, flows)
}

// TCPMaxMinReference returns the analytic max-min allocation the simulator
// is validated against.
func TCPMaxMinReference(capacity float64, caps []float64) []float64 {
	return netsim.MaxMinRates(capacity, caps)
}
