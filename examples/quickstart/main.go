// Quickstart: solve the rate equilibrium of the paper's three-archetype
// population (§II-D, Figure 3) and inspect throughputs, demand and consumer
// surplus as the last-mile capacity grows.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	pop := publicoption.Archetypes() // Google-, Netflix-, Skype-type CPs

	fmt.Println("Per-capita capacity sweep over the archetype population")
	fmt.Println("(throughputs in Kbps; saturation at Σ α·θ̂ = 5500)")
	fmt.Println()
	fmt.Printf("%8s  %22s  %22s  %10s\n", "nu", "theta (G/N/S)", "demand (G/N/S)", "phi")
	for _, nu := range []float64{250, 1000, 2000, 4000, 5500} {
		eq := publicoption.RateEquilibrium(nu, pop)
		fmt.Printf("%8.0f  %6.0f %7.0f %7.0f  %7.2f %6.2f %7.2f  %10.1f\n",
			nu,
			eq.Theta[0], eq.Theta[1], eq.Theta[2],
			eq.Demand(0), eq.Demand(1), eq.Demand(2),
			publicoption.ConsumerSurplus(eq),
		)
	}

	fmt.Println()
	fmt.Println("The Figure 3 ordering: as capacity grows, Google-type demand")
	fmt.Println("saturates first, then Skype-type, and Netflix-type last.")

	// Absolute-scale entry point: 10,000 consumers behind a 20 Gbps link is
	// the same system as ν = 2000 Kbps per capita (Axiom 4).
	abs := publicoption.SolveSystem(publicoption.MaxMin{}, 10000, 2000*10000, pop)
	rel := publicoption.RateEquilibrium(2000, pop)
	fmt.Printf("\nScale invariance check: θ_netflix = %.1f (absolute) vs %.1f (per capita)\n",
		abs.Theta[1], rel.Theta[1])
}
