// Quickstart: the paper's three-archetype population (§II-D, Figure 3) as a
// named scenario. The "archetypes-capacity" scenario declares the whole
// study — population, neutral ISP, capacity grid — as data; running it
// reproduces the Figure 3 saturation ordering without any setup code.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	s, ok := publicoption.ScenarioByName("archetypes-capacity")
	if !ok {
		panic("missing built-in scenario")
	}
	report, err := publicoption.RunScenarioReport(s, publicoption.ScenarioRunOptions{}, 0)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)

	// The scenario's tables are per-capita aggregates; the underlying API
	// answers per-CP questions. Google-type demand saturates first,
	// Netflix-type last — the Figure 3 ordering:
	pop := publicoption.Archetypes()
	fmt.Println("per-CP demand at ν = 2000 Kbps:")
	eq := publicoption.RateEquilibrium(2000, pop)
	for i := range pop {
		fmt.Printf("  %-8s d(θ)=%.2f at θ=%.0f Kbps\n", pop[i].Name, eq.Demand(i), eq.Theta[i])
	}

	// Absolute-scale entry point: 10,000 consumers behind a 20 Gbps link is
	// the same system as ν = 2000 Kbps per capita (Axiom 4).
	abs := publicoption.SolveSystem(publicoption.MaxMin{}, 10000, 2000*10000, pop)
	fmt.Printf("\nscale invariance: θ_netflix = %.1f (absolute) vs %.1f (per capita)\n",
		abs.Theta[1], eq.Theta[1])
}
