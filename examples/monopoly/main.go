// Monopoly pricing analysis (§III of the paper): a single last-mile ISP
// sells a paid-prioritization ("premium class") service to content
// providers. The example sweeps the premium price, finds the
// revenue-optimal strategy, and shows the paper's central monopoly finding:
// with abundant capacity, revenue maximization deliberately under-utilizes
// the network and hurts consumers — the case for regulation (or a Public
// Option) in monopolistic markets.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	mono := publicoption.NewMonopoly(nil)

	for _, nu := range []float64{50, 200} {
		fmt.Printf("=== per-capita capacity ν = %.0f (saturation ≈ 250)\n\n", nu)
		fmt.Printf("%6s  %10s  %10s  %12s\n", "c", "Ψ (ISP)", "Φ (cons.)", "utilization")
		for _, c := range []float64{0.05, 0.2, 0.4, 0.6, 0.8} {
			eq := mono.Outcome(publicoption.Strategy{Kappa: 1, C: c}, nu, pop)
			fmt.Printf("%6.2f  %10.2f  %10.1f  %11.0f%%\n", c, eq.Psi(), eq.Phi(), 100*eq.Utilization())
		}
		mono.ResetWarm()

		cBest, eqBest := mono.OptimalPrice(1, 1, nu, pop, 100)
		fmt.Printf("\nrevenue-optimal price c* = %.3f: Ψ = %.2f, Φ = %.1f, utilization %.0f%%\n",
			cBest, eqBest.Psi(), eqBest.Phi(), 100*eqBest.Utilization())

		mono.ResetWarm()
		eqCheap := mono.Outcome(publicoption.Strategy{Kappa: 1, C: 0.02}, nu, pop)
		fmt.Printf("near-free access (c = 0.02):  Ψ = %.2f, Φ = %.1f\n", eqCheap.Psi(), eqCheap.Phi())
		if eqBest.Phi() < eqCheap.Phi() {
			fmt.Printf("→ the profit-maximizing monopolist costs consumers %.1f of per-capita surplus\n\n",
				eqCheap.Phi()-eqBest.Phi())
		} else {
			fmt.Printf("→ at this scarcity, pricing and consumer surplus are not yet in conflict\n\n")
		}
		mono.ResetWarm()
	}

	// Theorem 4 in action: κ = 1 dominates every partial split at the same
	// price.
	fmt.Println("=== Theorem 4: the monopolist dedicates everything to the premium class")
	fmt.Printf("%8s  %10s\n", "κ", "Ψ at c=0.3")
	nu := 100.0
	for _, kappa := range []float64{0.25, 0.5, 0.75, 1.0} {
		mono.ResetWarm()
		eq := mono.Outcome(publicoption.Strategy{Kappa: kappa, C: 0.3}, nu, pop)
		fmt.Printf("%8.2f  %10.2f\n", kappa, eq.Psi())
	}
}
