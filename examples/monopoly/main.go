// Monopoly pricing analysis (§III of the paper), driven by named scenarios:
// "monopoly-price-sweep" sweeps the premium price at fixed capacity and
// "monopoly-capacity" grows capacity at a fixed price. Together they show
// the paper's central monopoly finding — revenue maximization deliberately
// under-utilizes the network and hurts consumers, the case for regulation
// (or a Public Option) in monopolistic markets.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func runScenario(name string) {
	s, ok := publicoption.ScenarioByName(name)
	if !ok {
		panic("missing built-in scenario " + name)
	}
	report, err := publicoption.RunScenarioReport(s, publicoption.ScenarioRunOptions{}, 12)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)
}

func main() {
	runScenario("monopoly-price-sweep")
	runScenario("monopoly-capacity")

	// The scenarios tabulate fixed strategies; the Stackelberg question —
	// which strategy the monopolist actually picks — needs the optimizer.
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	mono := publicoption.NewMonopoly(nil)
	nu := 200.0 // abundant but sub-saturation capacity (saturation ≈ 250)
	cBest, eqBest := mono.OptimalPrice(1, 1, nu, pop, 100)
	mono.ResetWarm()
	eqCheap := mono.Outcome(publicoption.Strategy{Kappa: 1, C: 0.02}, nu, pop)
	fmt.Printf("revenue-optimal price at ν=%.0f: c* = %.3f (Ψ = %.2f, Φ = %.1f, utilization %.0f%%)\n",
		nu, cBest, eqBest.Psi(), eqBest.Phi(), 100*eqBest.Utilization())
	fmt.Printf("near-free access (c = 0.02):    Ψ = %.2f, Φ = %.1f\n", eqCheap.Psi(), eqCheap.Phi())
	if eqBest.Phi() < eqCheap.Phi() {
		fmt.Printf("→ profit-maximizing pricing costs consumers %.1f of per-capita surplus\n",
			eqCheap.Phi()-eqBest.Phi())
	} else {
		fmt.Println("→ at this scarcity, pricing and consumer surplus are not yet in conflict")
	}
}
