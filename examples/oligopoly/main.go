// Oligopolistic competition (§IV-B of the paper): several strategic ISPs
// share the last mile. The example demonstrates Lemma 4 — under homogeneous
// strategies, market shares are proportional to capacities, so ISPs have an
// incentive to invest — and Theorem 6's alignment between market-share and
// consumer-surplus best responses.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	// A 300-CP draw from the paper's ensemble keeps this example snappy;
	// swap in PaperPopulation for the full published workload.
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 300, 7)
	nuBar := 0.4 * pop.TotalUnconstrainedPerCapita()
	mk := publicoption.NewMarket(nil, pop, nuBar)

	// Lemma 4: homogeneous strategies → capacity-proportional shares.
	shared := publicoption.Strategy{Kappa: 0.5, C: 0.3}
	isps := []publicoption.ISP{
		{Name: "alpha", Gamma: 0.5, Strategy: shared},
		{Name: "beta", Gamma: 0.3, Strategy: shared},
		{Name: "gamma", Gamma: 0.2, Strategy: shared},
	}
	out := mk.SolveMarket(isps)
	fmt.Println("Lemma 4 — homogeneous strategies, shares track capacity:")
	fmt.Printf("%8s  %10s  %10s\n", "ISP", "γ (cap.)", "share")
	for k, isp := range isps {
		fmt.Printf("%8s  %10.2f  %10.3f\n", isp.Name, isp.Gamma, out.Shares[k])
	}
	fmt.Printf("equalized per-capita consumer surplus Φ = %.1f\n\n", out.Phi)

	// Theorem 6: best responses for share and for surplus nearly coincide.
	duo := []publicoption.ISP{
		{Name: "i", Gamma: 0.5, Strategy: publicoption.Strategy{Kappa: 1, C: 0.6}},
		{Name: "j", Gamma: 0.5, Strategy: publicoption.Strategy{Kappa: 0.5, C: 0.3}},
	}
	grid := publicoption.StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1},
	}
	sShare, outShare, m := mk.BestResponse(duo, 0, grid)
	sPhi, outPhi, phi := mk.BestResponseForSurplus(duo, 0, grid)
	fmt.Println("Theorem 6 — ISP i best-responds against a fixed rival:")
	fmt.Printf("  for market share:     s = %v → m_i = %.3f, Φ = %.1f\n", sShare, m, outShare.Phi)
	fmt.Printf("  for consumer surplus: s = %v → m_i = %.3f, Φ = %.1f\n", sPhi, outPhi.Shares[0], phi)
	fmt.Println("  (the two objectives pick near-identical strategies)")

	// Iterated best response: a market-share Nash equilibrium on the grid.
	fmt.Println()
	res := mk.MarketShareNash(duo, grid, 6)
	fmt.Printf("Iterated best response (converged=%t, rounds=%d):\n", res.Converged, res.Rounds)
	for k, isp := range res.ISPs {
		fmt.Printf("  %s plays %v, share %.3f\n", isp.Name, isp.Strategy, res.Outcome.Shares[k])
	}
	fmt.Printf("market consumer surplus Φ = %.1f\n", res.Outcome.Phi)
}
