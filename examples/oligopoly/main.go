// Oligopolistic competition (§IV-B of the paper): the "oligopoly-symmetric"
// scenario demonstrates Lemma 4 — under homogeneous strategies, market
// shares are proportional to capacities, so ISPs have an incentive to
// invest — and the "asymmetric-duopoly" scenario shows a differentiating
// incumbent against a neutral rival. The best-response demo at the end is
// Theorem 6's alignment between market-share and consumer-surplus
// objectives, which needs the strategic API rather than a fixed sweep.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func runScenario(name string) {
	s, ok := publicoption.ScenarioByName(name)
	if !ok {
		panic("missing built-in scenario " + name)
	}
	report, err := publicoption.RunScenarioReport(s, publicoption.ScenarioRunOptions{}, 12)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)
}

func main() {
	runScenario("oligopoly-symmetric")
	runScenario("asymmetric-duopoly")

	// Theorem 6: best responses for share and for surplus nearly coincide.
	// (Same 300-CP ensemble the scenarios above declare.)
	pop := publicoption.GeneratePopulation(publicoption.PhiCorrelated, 300, 7)
	nuBar := 0.4 * pop.TotalUnconstrainedPerCapita()
	mk := publicoption.NewMarket(nil, pop, nuBar)
	duo := []publicoption.ISP{
		{Name: "i", Gamma: 0.5, Strategy: publicoption.Strategy{Kappa: 1, C: 0.6}},
		{Name: "j", Gamma: 0.5, Strategy: publicoption.Strategy{Kappa: 0.5, C: 0.3}},
	}
	grid := publicoption.StrategyGrid{
		Kappas: []float64{0, 0.5, 1},
		Cs:     []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.6, 0.8, 1},
	}
	sShare, outShare, m := mk.BestResponse(duo, 0, grid)
	sPhi, outPhi, phi := mk.BestResponseForSurplus(duo, 0, grid)
	fmt.Println("Theorem 6 — ISP i best-responds against a fixed rival:")
	fmt.Printf("  for market share:     s = %v → m_i = %.3f, Φ = %.1f\n", sShare, m, outShare.Phi)
	fmt.Printf("  for consumer surplus: s = %v → m_i = %.3f, Φ = %.1f\n", sPhi, outPhi.Shares[0], phi)
	fmt.Println("  (the two objectives pick near-identical strategies)")
}
