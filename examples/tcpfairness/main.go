// TCP fairness validation (§II-D.2 of the paper): the paper models TCP's
// bandwidth sharing as max-min fairness, citing Chiu–Jain. This example
// runs the fluid AIMD simulator on a mixed workload — elastic downloads,
// an application-limited video stream, an RTT-disadvantaged flow — and
// compares the emergent rates with the analytic max-min water-fill.
package main

import (
	"fmt"
	"math"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	const capacity = 100.0 // Mbps
	flows := []publicoption.TCPFlow{
		{Name: "bulk-1", RTT: 0.05},
		{Name: "bulk-2", RTT: 0.05},
		{Name: "bulk-3", RTT: 0.05},
		{Name: "video (capped 8)", RTT: 0.05, Cap: 8},
		{Name: "satellite (RTT 300ms)", RTT: 0.3},
	}
	res, err := publicoption.SimulateTCP(publicoption.TCPConfig{Capacity: capacity}, flows)
	if err != nil {
		panic(err)
	}
	caps := make([]float64, len(flows))
	for i, f := range flows {
		caps[i] = f.Cap
	}
	analytic := publicoption.TCPMaxMinReference(capacity, caps)

	fmt.Printf("bottleneck %.0f Mbps, %d flows — AIMD simulation vs max-min water-fill\n\n", capacity, len(flows))
	fmt.Printf("%-24s  %10s  %10s  %8s\n", "flow", "simulated", "max-min", "Δ%")
	for i, f := range res.Flows {
		delta := 100 * (f.Rate - analytic[i]) / analytic[i]
		fmt.Printf("%-24s  %10.2f  %10.2f  %+7.1f%%\n", f.Name, f.Rate, analytic[i], delta)
	}
	fmt.Printf("\nutilization %.1f%%, Jain index (elastic flows) %.4f\n", 100*res.Utilization, res.Jain)
	fmt.Println()
	fmt.Println("The capped flow pins to its application limit; equal-RTT elastic")
	fmt.Println("flows share the rest near-evenly (the paper's max-min model);")
	fmt.Println("the long-RTT flow shows AIMD's RTT bias — the first-order")
	fmt.Println("deviation the paper acknowledges and abstracts away.")

	worst := 0.0
	for i, f := range res.Flows {
		if flows[i].RTT > 0.1 {
			continue // exclude the deliberately RTT-biased flow
		}
		if d := math.Abs(f.Rate-analytic[i]) / analytic[i]; d > worst {
			worst = d
		}
	}
	fmt.Printf("\nworst deviation among equal-RTT flows: %.1f%%\n", 100*worst)
}
