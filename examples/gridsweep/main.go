// Command gridsweep walks through a 2-D grid scenario: the paper's Public
// Option sizing question (how much neutral capacity share γ disciplines a
// differentiating incumbent) swept jointly with per-capita capacity ν.
// Each row of the grid is exactly the 1-D public-option-sizing sweep at
// that row's ν, so the heatmap shows how the sizing threshold moves as
// capacity gets scarce.
package main

import (
	"fmt"
	"log"
	"os"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	s, ok := publicoption.ScenarioByName("po-sizing-gamma-nu")
	if !ok {
		log.Fatal("built-in grid scenario missing")
	}
	fmt.Printf("=== %s\n%s\n\n", s.Title, s.Description)

	grid, err := s.RunGrid(publicoption.ScenarioRunOptions{})
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("solved %d cells (%d×%d), %d layers\n\n",
		grid.Cells(), len(grid.Xs), len(grid.Ys), len(grid.Layers))

	// The consumer-surplus field Φ(γ, ν) and the entrant's share of the
	// market, as terminal heatmaps.
	fmt.Println(publicoption.RenderHeatmap(grid, "phi"))
	fmt.Println(publicoption.RenderHeatmap(grid, "share/public-option"))

	// Long-form CSV (layer,x,y,value) pivots into a heatmap in any tool.
	if err := grid.WriteCSV(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
