// The Public Option at work (§IV-A of the paper): a strategic,
// differentiating ISP competes with a neutral Public Option ISP of equal
// capacity. Consumers migrate to whichever ISP delivers more per-capita
// surplus (Assumption 5). The example shows Theorem 5: with a Public Option
// in the market, chasing market share *is* chasing consumer surplus — the
// incumbent is disciplined without any regulation.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func main() {
	pop := publicoption.PaperPopulation(publicoption.PhiCorrelated)
	nuBar := 100.0 // system per-capita capacity (saturation ≈ 250)

	fmt.Println("Strategic ISP (κ=1, price c) vs Public Option, equal capacities, ν̄ = 100")
	fmt.Println()
	fmt.Printf("%6s  %10s  %12s  %10s\n", "c", "share m_I", "Ψ_I (rev.)", "Φ (market)")
	type row struct{ c, share, psi, phi float64 }
	var best row
	for _, c := range []float64{0, 0.1, 0.2, 0.3, 0.4, 0.5, 0.7, 0.9, 1.0} {
		out := publicoption.DuopolyWithPublicOption(
			publicoption.Strategy{Kappa: 1, C: c}, 0.5, nuBar, pop)
		mI := out.Shares[0]
		psi := out.Eqs[0].Psi() * mI // per capita of the whole market
		fmt.Printf("%6.2f  %10.3f  %12.2f  %10.1f\n", c, mI, psi, out.Phi)
		if mI > best.share {
			best = row{c, mI, psi, out.Phi}
		}
	}

	fmt.Printf("\nmarket-share maximizing price: c = %.2f (m_I = %.3f, Φ = %.1f)\n",
		best.c, best.share, best.phi)
	fmt.Println()
	fmt.Println("Theorem 5: the share-maximizing strategy also maximizes consumer")
	fmt.Println("surplus — compare Φ across the rows above. Overpricing (c → 1)")
	fmt.Println("sends every consumer to the Public Option: the incumbent cannot")
	fmt.Println("win by squeezing content providers.")

	// The §VI sizing discussion: a small Public Option still disciplines.
	fmt.Println()
	fmt.Println("Public Option capacity sizing (incumbent plays κ=1, c=0.4):")
	fmt.Printf("%10s  %12s  %10s\n", "γ_PO", "PO share", "Φ (market)")
	for _, g := range []float64{0.05, 0.1, 0.25, 0.5} {
		out := publicoption.DuopolyWithPublicOption(
			publicoption.Strategy{Kappa: 1, C: 0.4}, 1-g, nuBar, pop)
		fmt.Printf("%10.2f  %12.3f  %10.1f\n", g, out.Shares[1], out.Phi)
	}
}
