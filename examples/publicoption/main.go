// The Public Option at work (§IV-A of the paper), driven by named
// scenarios: "public-option-duopoly" sweeps the incumbent's premium price
// against a neutral entrant of equal capacity, and "public-option-sizing"
// asks how much entrant capacity it takes to discipline the market.
// Theorem 5 is visible in the first table: the price that maximizes the
// incumbent's market share is also the price that maximizes consumer
// surplus — discipline without regulation.
package main

import (
	"fmt"

	publicoption "github.com/netecon-sim/publicoption"
)

func runScenario(name string) {
	s, ok := publicoption.ScenarioByName(name)
	if !ok {
		panic("missing built-in scenario " + name)
	}
	report, err := publicoption.RunScenarioReport(s, publicoption.ScenarioRunOptions{}, 12)
	if err != nil {
		panic(err)
	}
	fmt.Print(report)
}

func main() {
	runScenario("public-option-duopoly")
	runScenario("public-option-sizing")

	fmt.Println("Theorem 5: compare the share and phi tables above — the incumbent's")
	fmt.Println("share-maximizing price is also the consumer-surplus-maximizing one.")
	fmt.Println("Overpricing sends every consumer to the Public Option: the incumbent")
	fmt.Println("cannot win by squeezing content providers.")
}
