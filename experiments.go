package publicoption

import (
	"github.com/netecon-sim/publicoption/internal/experiment"
	"github.com/netecon-sim/publicoption/internal/plot"
	"github.com/netecon-sim/publicoption/internal/sweep"
)

// ExperimentConfig controls a figure reproduction run; the zero value
// reproduces the paper's configuration (seed, 1000-CP ensemble, full grids).
type ExperimentConfig = experiment.Config

// FigureExperiment is one registered reproduction (a paper figure or an
// ablation study).
type FigureExperiment = experiment.Experiment

// ResultTable is a reproduced figure: named series over a common axis.
type ResultTable = sweep.Table

// ResultSeries is one curve of a figure.
type ResultSeries = sweep.Series

// Experiments lists every registered experiment: the paper's Figures 2–5
// and 7–12 plus the ablations from DESIGN.md, in display order.
func Experiments() []*FigureExperiment { return experiment.All() }

// Experiment looks up a registered experiment by ID (e.g. "fig4").
func Experiment(id string) (*FigureExperiment, bool) { return experiment.Get(id) }

// RunExperiment executes the experiment with the config and returns its
// tables. It panics on unknown IDs; use Experiment to probe.
func RunExperiment(id string, cfg ExperimentConfig) []*ResultTable {
	return experiment.MustRun(id, cfg)
}

// RenderChart draws a table as an ASCII line chart (stdlib-only plotting).
func RenderChart(t *ResultTable, width, height int) string { return plot.Chart(t, width, height) }

// RenderText renders a table as aligned columns, subsampled to maxRows
// (0 = all rows).
func RenderText(t *ResultTable, maxRows int) string { return plot.Text(t, maxRows) }
